"""Ablation: static vs dynamic element selection under workload drift.

The paper's titular feature is that selection can re-run as observed
frequencies change.  This bench drives a three-phase drifting workload
through a static cube-only server, a server tuned once for the first phase,
and the adaptive :class:`DynamicViewAssembler`, and asserts the adaptive
server does the least total scalar work.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.adaptive import DynamicViewAssembler
from repro.core.element import CubeShape
from repro.core.materialize import MaterializedSet
from repro.core.operators import OpCounter
from repro.core.population import QueryPopulation
from repro.core.select_basis import select_minimum_cost_basis


@pytest.fixture(scope="module")
def workload():
    shape = CubeShape((4, 4, 4))
    rng = np.random.default_rng(37)
    data = rng.integers(0, 50, size=shape.sizes).astype(np.float64)
    views = list(shape.aggregated_views())
    sequence = []
    for phase_views in ([views[1], views[4]], [views[5]], [views[2], views[7]]):
        for _ in range(80):
            sequence.append(
                phase_views[int(rng.integers(len(phase_views)))]
            )
    return shape, data, sequence


def _serve_static(shape, data, sequence, elements):
    ms = MaterializedSet.from_cube(data, elements)
    counter = OpCounter()
    for view in sequence:
        ms.assemble(view, counter=counter)
    return counter.total


def test_static_cube_only(benchmark, workload):
    shape, data, sequence = workload
    ops = benchmark.pedantic(
        _serve_static,
        args=(shape, data, sequence, [shape.root()]),
        rounds=2,
        iterations=1,
    )
    assert ops > 0


def test_static_phase1_tuned(benchmark, workload):
    shape, data, sequence = workload
    phase1 = QueryPopulation.point_mass(sequence[:80])
    basis = select_minimum_cost_basis(shape, phase1)

    ops = benchmark.pedantic(
        _serve_static,
        args=(shape, data, sequence, list(basis.elements)),
        rounds=2,
        iterations=1,
    )
    assert ops > 0


def test_dynamic_assembler(benchmark, workload):
    shape, data, sequence = workload

    def serve():
        assembler = DynamicViewAssembler(
            data, shape, reconfigure_every=40, decay=0.9
        )
        for view in sequence:
            assembler.query(view)
        return assembler

    assembler = benchmark.pedantic(serve, rounds=2, iterations=1)
    cube_only_ops = _serve_static(shape, data, sequence, [shape.root()])
    assert assembler.stats.operations < cube_only_ops
    print(
        f"\nadaptive ablation: dynamic {assembler.stats.operations:,} ops "
        f"vs cube-only {cube_only_ops:,} ops over {len(sequence)} queries "
        f"({len(assembler.history)} reconfigurations)"
    )
