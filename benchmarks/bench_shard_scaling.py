"""Sharded scatter-gather vs monolithic assembly (wall, ops, merge cost).

Serves the same batch of group-by views — every non-root aggregation of a
3-d cube — from a monolithic :class:`~repro.core.materialize.
MaterializedSet` and from :class:`~repro.shard.sets.ShardedSet` at 1, 2,
4, and 8 shards, and reports the wall-clock speedup plus the gather
(merge) overhead of the scatter layer.

Shard legs run *serially* (``max_workers=1``): the win measured here is
cache locality, not thread parallelism — each shard's slab keeps the
cascade intermediates resident in cache where the monolithic cube's
working set does not fit.  That makes the gate meaningful on any core
count, including single-core CI runners.  Every sharded answer is
asserted byte-identical to the monolithic baseline (the merge is exact by
distributivity), and the full-mode gate requires >= 1.6x at 4 shards on
the 2^24-cell cube.

Runs standalone (writes ``BENCH_shard.json``)::

    PYTHONPATH=src python benchmarks/bench_shard_scaling.py \
        --output BENCH_shard.json
    ... --small --check                 # CI smoke: small cube + gates
    ... --compare BENCH_shard.json      # fail on >1.5x speedup regression

or under pytest-benchmark with the rest of the suite.
"""

from __future__ import annotations

import sys
import time
from itertools import combinations

import numpy as np
from _gates import REGRESSION_FACTOR, build_parser, finish, ratio_regressed

from repro.core.element import CubeShape
from repro.core.materialize import MaterializedSet
from repro.core.operators import OpCounter
from repro.shard.partition import CubePartition
from repro.shard.sets import ShardedSet

#: 2^24 cells; the largest dimension (the tied 512s break to the last
#: axis) is the shard axis, so 8 shards still leave 64-deep slabs.
FULL_SIZES = (64, 512, 512)
FULL_SHARDS = (1, 2, 4, 8)

#: 2^19 cells for the CI smoke run (seconds, not minutes).
SMALL_SIZES = (32, 128, 128)
SMALL_SHARDS = (1, 2, 4)

#: Minimum speedup of 4 shards over 1 shard.  The full cube carries the
#: paper-sized claim.  The small cube fits in last-level cache whole, so
#: sharding buys nothing there and costs a little gather work; its floor
#: only asserts the scatter layer did not collapse (stayed within ~2x of
#: the single-shard wall).
SPEEDUP_FLOOR = {"full": 1.6, "small": 0.5}


def _best_wall(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _targets(shape: CubeShape):
    """Every proper group-by view (the root is stored — a trivial copy
    would dilute the assembly measurement)."""
    d = shape.ndim
    return [
        shape.aggregated_view(agg)
        for k in range(1, d + 1)
        for agg in combinations(range(d), k)
    ]


def _build_values(sizes) -> np.ndarray:
    rng = np.random.default_rng(24)
    return rng.integers(0, 100, size=sizes).astype(np.float64)


def _measure_monolithic(shape, values, targets, repeats: int) -> dict:
    ms = MaterializedSet(shape)
    ms.store(shape.root(), values)

    def serve():
        counter = OpCounter()
        return (
            ms.assemble_batch(targets, counter=counter),
            counter,
        )

    expected, counter = serve()
    wall = _best_wall(serve, repeats)
    return {
        "wall_ms": wall * 1e3,
        "operations": counter.total,
    }, expected


def _measure_sharded(
    shape, values, targets, shards: int, expected, repeats: int
) -> dict:
    partition = CubePartition.for_shape(shape, shards)
    sharded = ShardedSet(partition, base_values=values)
    sharded.store(shape.root(), values)

    def serve():
        counter = OpCounter()
        return (
            sharded.assemble_batch(targets, counter=counter, max_workers=1),
            counter,
        )

    got, counter = serve()
    for target in targets:
        assert got[target].tobytes() == expected[target].tobytes(), (
            f"{shards} shards: answers are not bit-identical"
        )
    wall = _best_wall(serve, repeats)
    stats = dict(sharded.last_scatter_stats or {})
    wall_ms = wall * 1e3
    return {
        "shards": shards,
        "axis": partition.axis,
        "wall_ms": wall_ms,
        "operations": counter.total,
        "bit_identical": True,
        "plans": stats.get("plans"),
        "degraded_shards": stats.get("degraded_shards", []),
        "merge_ops": stats.get("merge_ops"),
        "gather_ms": stats.get("gather_ms"),
        "gather_overhead_fraction": (
            stats.get("gather_ms", 0.0) / wall_ms if wall_ms else 0.0
        ),
    }


def run(small: bool = False, repeats: int | None = None) -> dict:
    sizes = SMALL_SIZES if small else FULL_SIZES
    shard_counts = SMALL_SHARDS if small else FULL_SHARDS
    if repeats is None:
        repeats = 5
    shape = CubeShape(sizes)
    values = _build_values(sizes)
    targets = _targets(shape)
    monolithic, expected = _measure_monolithic(
        shape, values, targets, repeats
    )
    entries = [
        _measure_sharded(shape, values, targets, s, expected, repeats)
        for s in shard_counts
    ]
    base_wall = entries[0]["wall_ms"]  # the 1-shard configuration
    for entry in entries:
        entry["speedup_vs_1_shard"] = base_wall / entry["wall_ms"]
        entry["speedup_vs_monolithic"] = (
            monolithic["wall_ms"] / entry["wall_ms"]
        )
    return {
        "benchmark": "sharded scatter-gather scaling",
        "mode": "small" if small else "full",
        "shape": list(sizes),
        "cells": int(np.prod(sizes)),
        "targets": len(targets),
        "repeats": repeats,
        "scatter_workers": 1,
        "monolithic": monolithic,
        "shards": entries,
    }


def check(report: dict) -> None:
    """Smoke gates: exact merges, no degradation, sharding must pay off."""
    for entry in report["shards"]:
        assert entry["bit_identical"], (
            f"{entry['shards']} shards not bit-identical"
        )
        assert entry["degraded_shards"] == [], (
            f"{entry['shards']} shards: fault-free run degraded "
            f"{entry['degraded_shards']}"
        )
    by_count = {entry["shards"]: entry for entry in report["shards"]}
    floor = SPEEDUP_FLOOR[report["mode"]]
    four = by_count[4]
    assert four["speedup_vs_1_shard"] >= floor, (
        f"4 shards: speedup {four['speedup_vs_1_shard']:.2f}x over 1 shard "
        f"is below the {floor}x floor"
    )
    # The merge stays a small fraction of the serve — the scatter layer
    # must not trade assembly time for gather time.
    for entry in report["shards"]:
        assert entry["gather_overhead_fraction"] < 0.5, (
            f"{entry['shards']} shards: gather is "
            f"{entry['gather_overhead_fraction']:.0%} of the batch wall"
        )


def compare(report: dict, baseline: dict) -> list[str]:
    """Speedup-ratio regression gate against a checked-in report."""
    failures: list[str] = []
    base = {entry["shards"]: entry for entry in baseline.get("shards", [])}
    if report["shape"] != baseline.get("shape"):
        return failures
    for entry in report["shards"]:
        ref = base.get(entry["shards"])
        if ref is None or entry["shards"] == 1:
            continue
        current = entry["speedup_vs_1_shard"]
        reference = ref["speedup_vs_1_shard"]
        if ratio_regressed(current, reference):
            failures.append(
                f"{entry['shards']} shards: speedup {current:.2f}x "
                f"regressed more than {REGRESSION_FACTOR}x from baseline "
                f"{reference:.2f}x"
            )
    return failures


def render(report: dict) -> str:
    mono = report["monolithic"]
    lines = [
        f"{tuple(report['shape'])} ({report['cells']} cells), "
        f"{report['targets']} targets: monolithic {mono['wall_ms']:.1f} ms"
    ]
    for entry in report["shards"]:
        lines.append(
            f"  {entry['shards']} shard(s): {entry['wall_ms']:.1f} ms "
            f"({entry['speedup_vs_1_shard']:.2f}x vs 1 shard, "
            f"{entry['speedup_vs_monolithic']:.2f}x vs monolithic, "
            f"gather {entry['gather_ms']:.2f} ms, "
            f"{entry['merge_ops']} merge ops)"
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = build_parser(
        __doc__.splitlines()[0],
        small_help="small cube (CI smoke)",
        check_help="assert the scaling gates",
    )
    args = parser.parse_args(argv)
    report = run(small=args.small, repeats=args.repeats)
    return finish(report, args, check=check, compare=compare, render=render)


# ---------------------------------------------------------------------------
# pytest-benchmark entry point (small cube; assertions always on)


def test_shard_scaling_small(benchmark):
    report = benchmark.pedantic(
        lambda: run(small=True, repeats=3), rounds=1, iterations=1
    )
    check(report)


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
