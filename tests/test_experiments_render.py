"""Rendering smoke tests for the experiment drivers at reduced scale.

The statistical drivers are exercised in ``test_experiments.py``; here we
make sure their human-facing ``main()`` outputs carry the content a reader
needs (legend, axes, paper-comparison rows) at configurations small enough
to keep the test-suite fast.
"""

from __future__ import annotations

import pytest

from repro.experiments import figure8, figure9


class TestFigure8Render:
    def test_main_contains_plot_and_summary(self):
        out = figure8.main(
            figure8.Figure8Config(
                dimensions=2, domain_size=4, num_trials=4
            )
        )
        assert "legend: *=W   o=D   +=V" in out
        assert "mean V/D" in out
        assert "Sensitivity" in out

    def test_sensitivity_table_rows(self):
        out = figure8.sensitivity_table(
            figure8.Figure8Config(
                dimensions=2, domain_size=4, num_trials=3
            )
        )
        assert "uniform weights" in out
        assert "Dirichlet(0.2)" in out


class TestFigure9Render:
    def test_main_contains_curves_and_points(self):
        out = figure9.main(
            figure9.Figure9Config(
                dimensions=2,
                domain_size=4,
                num_trials=2,
                budget_points=4,
            )
        )
        assert "storage" in out
        assert "point c" in out or "point b" in out
        assert "[V] dominates [D]" in out

    def test_budget_grid_respects_points(self):
        config = figure9.Figure9Config(
            dimensions=2, domain_size=4, num_trials=1, budget_points=5
        )
        assert len(config.budgets) == 5
        assert config.budgets[0] == pytest.approx(1.0)
        assert config.budgets[-1] == pytest.approx(
            config.max_storage_ratio
        )
