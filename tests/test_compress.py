"""Tests for the §4.3 wavelet-packet compression extension."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compress import CompressedCube, best_compression_basis
from repro.core.element import CubeShape
from repro.core.frequency import is_non_redundant_basis


def _block_sparse_cube(shape: CubeShape, rng: np.random.Generator) -> np.ndarray:
    """A cube with one dense dyadic block and zeros elsewhere."""
    data = np.zeros(shape.sizes)
    slices = tuple(slice(0, n // 2) for n in shape.sizes)
    data[slices] = rng.integers(1, 9, size=tuple(n // 2 for n in shape.sizes))
    return data.astype(np.float64)


class TestBestBasisSearch:
    def test_result_is_a_basis(self, shape_4x4, rng):
        data = rng.random(shape_4x4.sizes)
        basis, _ = best_compression_basis(data, shape_4x4)
        assert is_non_redundant_basis(basis)

    def test_constant_cube_compresses_to_few_coefficients(self, shape_4x4):
        """A constant cube has zero residuals everywhere: the nnz-optimal
        basis keeps only aggregate coefficients."""
        data = np.full(shape_4x4.sizes, 5.0)
        basis, cost = best_compression_basis(data, shape_4x4)
        assert cost == 1.0  # a single non-zero coefficient suffices

    def test_block_sparse_beats_identity(self, rng):
        shape = CubeShape((8, 8))
        data = _block_sparse_cube(shape, rng)
        _, cost = best_compression_basis(data, shape)
        assert cost <= np.count_nonzero(data)

    def test_shape_mismatch(self, shape_4x4):
        with pytest.raises(ValueError, match="does not match"):
            best_compression_basis(np.zeros((2, 2)), shape_4x4)

    def test_unknown_functional(self, shape_4x4):
        with pytest.raises(ValueError, match="unknown cost functional"):
            best_compression_basis(
                np.zeros(shape_4x4.sizes), shape_4x4, functional="bogus"
            )

    def test_entropy_functional_runs(self, shape_4x4, rng):
        data = rng.random(shape_4x4.sizes)
        basis, cost = best_compression_basis(
            data, shape_4x4, functional="entropy"
        )
        assert is_non_redundant_basis(basis)
        assert cost >= 0.0


class TestCompressedCube:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_lossless_at_zero_threshold(self, seed):
        shape = CubeShape((4, 4))
        rng = np.random.default_rng(seed)
        data = rng.integers(-9, 9, size=shape.sizes).astype(np.float64)
        compressed = CompressedCube.compress(data, shape, threshold=0.0)
        np.testing.assert_allclose(compressed.reconstruct(), data)

    def test_sparse_cube_high_ratio(self, rng):
        shape = CubeShape((16, 16))
        data = _block_sparse_cube(shape, rng)
        compressed = CompressedCube.compress(data, shape)
        assert compressed.compression_ratio > 2.0
        np.testing.assert_allclose(compressed.reconstruct(), data)

    def test_all_zero_cube(self):
        shape = CubeShape((4, 4))
        compressed = CompressedCube.compress(np.zeros(shape.sizes), shape)
        assert compressed.stored_coefficients == 0
        assert compressed.compression_ratio == float("inf")
        np.testing.assert_array_equal(
            compressed.reconstruct(), np.zeros(shape.sizes)
        )

    def test_thresholding_is_lossy_but_bounded(self, rng):
        shape = CubeShape((8, 8))
        data = rng.normal(scale=10.0, size=shape.sizes)
        compressed = CompressedCube.compress(data, shape, threshold=0.5)
        recon = compressed.reconstruct()
        # Dropping small coefficients loses little total energy.
        err = np.abs(recon - data).max()
        assert err < 10.0  # loose sanity bound; exactness not expected
        assert compressed.stored_coefficients <= shape.volume

    def test_memory_accounting(self, rng):
        shape = CubeShape((4, 4))
        data = rng.random(shape.sizes)
        compressed = CompressedCube.compress(data, shape)
        assert compressed.memory_cells() == compressed.stored_coefficients * 3
