"""OLAPServer batch serving and thread-safety.

``query_batch`` / ``rollup_batch`` must answer exactly like their
one-at-a-time counterparts (bit-identical arrays, correct accounting)
while spending fewer scalar operations thanks to the shared plan; and the
single-query path must tolerate concurrent callers — the result cache,
stats, and metric counters all stay exact under N threads.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.cube.builder import build_cube
from repro.server import OLAPServer


def records_for(n_regions=4, n_products=4, n_quarters=2):
    regions = [f"r{i}" for i in range(n_regions)]
    products = [f"p{i}" for i in range(n_products)]
    quarters = [f"q{i}" for i in range(n_quarters)]
    rows = []
    value = 0
    for r in regions:
        for p in products:
            for q in quarters:
                value += 1
                rows.append(
                    {"region": r, "product": p, "quarter": q, "sales": value * 1.5}
                )
    return rows


@pytest.fixture()
def server():
    cube = build_cube(records_for(), ["region", "product", "quarter"], "sales")
    return OLAPServer(cube)


REQUESTS = [
    [],
    ["region"],
    ["product"],
    ["quarter"],
    ["region", "product"],
    ["region", "quarter"],
    ["product", "quarter"],
    ["region", "product", "quarter"],
]


class TestQueryBatch:
    def test_batch_matches_individual_views(self, server):
        cube = build_cube(records_for(), ["region", "product", "quarter"], "sales")
        reference = OLAPServer(cube)
        expected = [reference.view(dims) for dims in REQUESTS]
        batch = server.query_batch(REQUESTS)
        for want, got in zip(expected, batch):
            np.testing.assert_array_equal(want, got)

    def test_batch_spends_fewer_operations(self, server):
        cube = build_cube(records_for(), ["region", "product", "quarter"], "sales")
        reference = OLAPServer(cube)
        for dims in REQUESTS:
            reference.view(dims)
        server.query_batch(REQUESTS)
        assert server.stats.operations < reference.stats.operations
        assert server.stats.queries == reference.stats.queries == len(REQUESTS)

    def test_batch_results_land_in_cache(self, server):
        server.query_batch(REQUESTS)
        ops = server.stats.operations
        again = server.query_batch(REQUESTS)
        assert server.stats.operations == ops  # all hits, zero new work
        for dims, values in zip(REQUESTS, again):
            np.testing.assert_array_equal(values, server.view(dims))

    def test_cached_targets_pruned_from_plan(self, server):
        server.view(["region"])  # warm one target
        ops_single = server.stats.operations
        server.query_batch([["region"], ["region", "product"]])
        # The warm target contributed nothing; only the miss was assembled.
        cold = OLAPServer(
            build_cube(records_for(), ["region", "product", "quarter"], "sales")
        )
        cold.view(["region", "product"])
        assert (
            server.stats.operations - ops_single == cold.stats.operations
        )

    def test_reconfigure_epoch_invalidates_batch_cache(self, server):
        before = server.query_batch(REQUESTS)
        server.reconfigure()
        ops = server.stats.operations
        after = server.query_batch(REQUESTS)
        assert server.stats.operations >= ops  # re-assembled (new epoch keys)
        for want, got in zip(before, after):
            np.testing.assert_array_equal(want, got)

    def test_threaded_batch_identical(self, server):
        serial = server.query_batch(REQUESTS)
        fresh = OLAPServer(
            build_cube(records_for(), ["region", "product", "quarter"], "sales")
        )
        threaded = fresh.query_batch(REQUESTS, max_workers=4)
        for want, got in zip(serial, threaded):
            np.testing.assert_array_equal(want, got)

    def test_rollup_batch_matches_individual(self, server):
        levels_list = [
            {"region": 0},
            {"region": 1},
            {"region": 1, "product": 1},
        ]
        cube = build_cube(records_for(), ["region", "product", "quarter"], "sales")
        reference = OLAPServer(cube)
        expected = [reference.rollup(levels) for levels in levels_list]
        batch = server.rollup_batch(levels_list)
        for want, got in zip(expected, batch):
            np.testing.assert_array_equal(want, got)


class TestConcurrentQueries:
    N_THREADS = 8
    PER_THREAD = 4

    def test_concurrent_queries_bit_identical_and_exactly_accounted(self, server):
        """N threads issuing the same query mix get bit-identical answers,
        and stats / cache metrics add up exactly."""
        cube = build_cube(records_for(), ["region", "product", "quarter"], "sales")
        reference = OLAPServer(cube)
        expected = {
            tuple(dims): reference.view(dims) for dims in REQUESTS[: self.PER_THREAD]
        }

        barrier = threading.Barrier(self.N_THREADS)
        failures: list[str] = []

        def worker():
            barrier.wait()
            for dims in REQUESTS[: self.PER_THREAD]:
                got = server.view(dims)
                want = expected[tuple(dims)]
                if not np.array_equal(got, want):
                    failures.append(f"mismatch for {dims}")

        with ThreadPoolExecutor(max_workers=self.N_THREADS) as pool:
            list(pool.map(lambda _: worker(), range(self.N_THREADS)))

        assert not failures
        total = self.N_THREADS * self.PER_THREAD
        assert server.stats.queries == total
        hits = server.metrics.counter(
            "view_cache_hits_total", "result cache hits"
        ).value()
        misses = server.metrics.counter(
            "view_cache_misses_total", "result cache misses"
        ).value()
        assert hits + misses == total
        served = server.metrics.counter(
            "server_queries_total", "queries served, by kind"
        ).value(kind="view")
        assert served == total

    def test_concurrent_queries_on_warm_cache_cost_nothing(self, server):
        for dims in REQUESTS:
            server.view(dims)
        ops = server.stats.operations

        barrier = threading.Barrier(self.N_THREADS)

        def worker():
            barrier.wait()
            for dims in REQUESTS:
                server.view(dims)

        with ThreadPoolExecutor(max_workers=self.N_THREADS) as pool:
            list(pool.map(lambda _: worker(), range(self.N_THREADS)))

        assert server.stats.operations == ops
        assert server.stats.queries == (self.N_THREADS + 1) * len(REQUESTS)
