"""Tests for range-aggregation via intermediate elements (paper §6)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bases import gaussian_pyramid
from repro.core.element import CubeShape
from repro.core.materialize import MaterializedSet
from repro.core.operators import OpCounter
from repro.core.range_query import (
    RangeQueryEngine,
    dyadic_decomposition,
    range_sum_direct,
)


class TestDyadicDecomposition:
    @settings(max_examples=200, deadline=None)
    @given(
        bounds=st.tuples(
            st.integers(min_value=0, max_value=16),
            st.integers(min_value=0, max_value=16),
        )
    )
    def test_blocks_partition_the_range(self, bounds):
        lo, hi = min(bounds), max(bounds)
        blocks = dyadic_decomposition(lo, hi, 16)
        covered = []
        for level, cell in blocks:
            size = 1 << level
            start = cell * size
            assert start % size == 0  # aligned
            covered.extend(range(start, start + size))
        assert covered == list(range(lo, hi))

    def test_block_count_bound(self):
        """At most 2*log2(n) blocks for any range."""
        n = 64
        worst = max(
            len(dyadic_decomposition(lo, hi, n))
            for lo in range(n)
            for hi in range(lo, n + 1)
        )
        assert worst <= 2 * 6

    def test_aligned_range_is_single_block(self):
        assert dyadic_decomposition(8, 16, 16) == [(3, 1)]
        assert dyadic_decomposition(0, 16, 16) == [(4, 0)]

    def test_out_of_bounds(self):
        with pytest.raises(ValueError, match="outside"):
            dyadic_decomposition(-1, 4, 8)
        with pytest.raises(ValueError, match="outside"):
            dyadic_decomposition(0, 9, 8)


class TestRangeSumDirect:
    def test_matches_numpy(self, shape_3d, cube_3d):
        counter = OpCounter()
        value = range_sum_direct(cube_3d, ((1, 5), (0, 4), (1, 2)), counter)
        assert value == pytest.approx(cube_3d[1:5, 0:4, 1:2].sum())
        assert counter.additions == 4 * 4 * 1 - 1


class TestRangeQueryEngine:
    @pytest.fixture(scope="class")
    def engine(self):
        shape = CubeShape((8, 8))
        rng = np.random.default_rng(3)
        data = rng.integers(0, 100, size=shape.sizes).astype(np.float64)
        return data, RangeQueryEngine.with_gaussian_pyramid(data, shape)

    @settings(max_examples=100, deadline=None)
    @given(
        r0=st.tuples(st.integers(0, 8), st.integers(0, 8)),
        r1=st.tuples(st.integers(0, 8), st.integers(0, 8)),
    )
    def test_matches_direct_sum(self, engine, r0, r1):
        data, rq = engine
        ranges = (tuple(sorted(r0)), tuple(sorted(r1)))
        answer = rq.range_sum(ranges)
        expected = range_sum_direct(data, ranges)
        assert answer.value == pytest.approx(expected)

    def test_aligned_range_touches_one_cell(self, engine):
        data, rq = engine
        answer = rq.range_sum(((0, 8), (4, 8)))
        assert answer.cells_read == 1
        assert answer.operations == 0
        assert answer.value == pytest.approx(data[:, 4:8].sum())

    def test_cheaper_than_scan_for_large_ranges(self, engine):
        data, rq = engine
        ranges = ((1, 8), (1, 8))
        counter_direct = OpCounter()
        range_sum_direct(data, ranges, counter_direct)
        answer = rq.range_sum(ranges)
        assert answer.operations < counter_direct.total

    def test_empty_range(self, engine):
        _, rq = engine
        answer = rq.range_sum(((3, 3), (0, 8)))
        assert answer.value == 0.0
        assert answer.cells_read == 0

    def test_arity_check(self, engine):
        _, rq = engine
        with pytest.raises(ValueError, match="2-dimensional"):
            rq.range_sum(((0, 4),))

    def test_missing_intermediates_assembled(self, shape_4x4, cube_4x4):
        """With only a wavelet-packet basis stored, range sums still work
        (intermediates are assembled and cached on demand)."""
        from repro.core.bases import random_wavelet_packet_basis

        rng = np.random.default_rng(9)
        basis = random_wavelet_packet_basis(shape_4x4, rng)
        ms = MaterializedSet.from_cube(cube_4x4, basis)
        engine = RangeQueryEngine(ms)
        ranges = ((1, 3), (0, 4))
        answer = engine.range_sum(ranges)
        assert answer.value == pytest.approx(cube_4x4[1:3, :].sum())

    def test_missing_intermediates_strict_mode(self, shape_4x4, cube_4x4):
        ms = MaterializedSet.from_cube(
            cube_4x4, [shape_4x4.root()]
        )
        engine = RangeQueryEngine(ms, assemble_missing=False)
        # Level-0 lookups come straight from the stored cube...
        answer = engine.range_sum(((0, 1), (0, 1)))
        assert answer.value == pytest.approx(cube_4x4[0, 0])
        # ...but coarser blocks need missing intermediates.
        with pytest.raises(KeyError, match="not materialized"):
            engine.range_sum(((0, 4), (0, 4)))

    def test_pyramid_storage_bound(self, shape_4x4, cube_4x4):
        """The full intermediate pyramid is bounded by prod(2 - 1/?)."""
        engine = RangeQueryEngine.with_gaussian_pyramid(cube_4x4, shape_4x4)
        # sum over level pairs of (4/2^k0)*(4/2^k1) = (4+2+1)^2 = 49.
        assert engine.materialized.storage == 49


class TestPrefetch:
    """Batch prefetch assembles a workload's intermediates as one plan."""

    def _engine(self, rng):
        shape = CubeShape((8, 4))
        data = rng.standard_normal((8, 4))
        ms = MaterializedSet(shape)
        ms.store(shape.root(), data)
        return data, RangeQueryEngine(ms)

    WORKLOAD = [
        ((1, 7), (0, 3)),
        ((0, 5), (1, 4)),
        ((2, 8), (0, 4)),
        ((3, 4), (2, 3)),
    ]

    def test_prefetch_then_answers_match_direct_scan(self, rng):
        data, engine = self._engine(rng)
        assembled = engine.prefetch(self.WORKLOAD)
        assert assembled > 0
        for ranges in self.WORKLOAD:
            answer = engine.range_sum(ranges)
            slices = tuple(slice(lo, hi) for lo, hi in ranges)
            assert answer.value == pytest.approx(float(data[slices].sum()))

    def test_prefetch_is_idempotent(self, rng):
        _, engine = self._engine(rng)
        engine.prefetch(self.WORKLOAD)
        assert engine.prefetch(self.WORKLOAD) == 0

    def test_prefetch_spends_fewer_ops_than_on_demand(self, rng):
        data, cold = self._engine(rng)
        on_demand = OpCounter()
        for ranges in self.WORKLOAD:
            cold.range_sum(ranges, counter=on_demand)

        _, warmed = self._engine(rng)
        batch = OpCounter()
        warmed.prefetch(self.WORKLOAD, counter=batch)
        for ranges in self.WORKLOAD:
            warmed.range_sum(ranges, counter=batch)
        assert batch.total <= on_demand.total

    def test_prefetch_threaded_matches_serial(self, rng):
        shape = CubeShape((8, 4))
        data = rng.standard_normal((8, 4))
        sets = []
        for _ in range(2):
            ms = MaterializedSet(shape)
            ms.store(shape.root(), data)
            sets.append(RangeQueryEngine(ms))
        serial, threaded = sets
        serial.prefetch(self.WORKLOAD)
        threaded.prefetch(self.WORKLOAD, max_workers=3)
        for ranges in self.WORKLOAD:
            a = serial.range_sum(ranges)
            b = threaded.range_sum(ranges)
            assert a.value == b.value  # bit-identical assemblies

    def test_empty_workload(self, rng):
        _, engine = self._engine(rng)
        assert engine.prefetch([]) == 0
