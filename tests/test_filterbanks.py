"""Tests for the generalized two-tap filter pair framework."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.element import CubeShape
from repro.core.filterbanks import (
    HAAR,
    MEAN,
    ORTHONORMAL_HAAR,
    FilterPair,
    analyze_pair,
    compute_element_with_pair,
    synthesize_pair,
)
from repro.core.materialize import compute_element
from repro.core.operators import OpCounter, analyze


PAIRS = [HAAR, MEAN, ORTHONORMAL_HAAR]


class TestFilterPair:
    def test_singular_pair_rejected(self):
        with pytest.raises(ValueError, match="singular"):
            FilterPair("bad", (1.0, 1.0), (2.0, 2.0))

    def test_haar_properties(self):
        assert HAAR.is_sum_preserving
        assert not HAAR.is_energy_preserving

    def test_orthonormal_properties(self):
        assert ORTHONORMAL_HAAR.is_energy_preserving
        assert not ORTHONORMAL_HAAR.is_sum_preserving

    def test_mean_properties(self):
        assert not MEAN.is_sum_preserving
        assert MEAN.determinant == pytest.approx(-0.5)


class TestPerfectReconstruction:
    @pytest.mark.parametrize("pair", PAIRS, ids=lambda p: p.name)
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_round_trip(self, pair, seed):
        rng = np.random.default_rng(seed)
        a = rng.integers(-99, 99, size=(8, 4)).astype(float)
        for axis in (0, 1):
            p, r = analyze_pair(a, axis, pair=pair)
            np.testing.assert_allclose(
                synthesize_pair(p, r, axis, pair=pair), a
            )

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="differ"):
            synthesize_pair(np.zeros(2), np.zeros(4), 0)

    def test_odd_extent_rejected(self):
        with pytest.raises(ValueError, match="even extent"):
            analyze_pair(np.zeros((3, 2)), 0)


class TestSemantics:
    def test_haar_matches_paper_operators(self, rng):
        a = rng.integers(0, 50, size=(8, 4)).astype(float)
        p_ref, r_ref = analyze(a, 0)
        p, r = analyze_pair(a, 0, pair=HAAR)
        np.testing.assert_array_equal(p, p_ref)
        np.testing.assert_array_equal(r, r_ref)

    def test_mean_lowpass_is_pairwise_mean(self, rng):
        a = rng.integers(0, 50, size=(8,)).astype(float)
        p, _ = analyze_pair(a, 0, pair=MEAN)
        np.testing.assert_allclose(p, a.reshape(-1, 2).mean(axis=1))

    def test_mean_cascade_computes_block_means(self, rng):
        shape = CubeShape((8, 4))
        data = rng.integers(0, 50, size=shape.sizes).astype(float)
        view = shape.aggregated_view([0, 1])
        means = compute_element_with_pair(data, view, pair=MEAN)
        assert means.item() == pytest.approx(data.mean())

    def test_orthonormal_preserves_energy(self, rng):
        a = rng.normal(size=(8, 8))
        p, r = analyze_pair(a, 0, pair=ORTHONORMAL_HAAR)
        assert (p**2).sum() + (r**2).sum() == pytest.approx((a**2).sum())


class TestComputeElementWithPair:
    def test_haar_matches_materialize(self, shape_4x4, cube_4x4):
        from repro.core.graph import ViewElementGraph

        for element in list(ViewElementGraph(shape_4x4).elements())[::7]:
            np.testing.assert_allclose(
                compute_element_with_pair(cube_4x4, element, pair=HAAR),
                compute_element(cube_4x4, element),
            )

    def test_operation_counts_match_cost_model(self, shape_4x4, cube_4x4):
        element = shape_4x4.aggregated_view([0])
        counter = OpCounter()
        compute_element_with_pair(cube_4x4, element, counter=counter)
        assert counter.total == shape_4x4.volume - element.volume

    def test_shape_mismatch(self, shape_4x4):
        with pytest.raises(ValueError, match="does not match"):
            compute_element_with_pair(np.zeros((2, 2)), shape_4x4.root())
