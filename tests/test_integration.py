"""End-to-end integration tests across all subsystems.

The flows mirror what a downstream OLAP user would do: load a fact table,
build the cube, select and materialize a view element set for a workload,
serve views and range queries, and cross-check every answer against the
independent relational substrate.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.adaptive import DynamicViewAssembler
from repro.core.materialize import MaterializedSet
from repro.core.operators import OpCounter
from repro.core.population import QueryPopulation
from repro.core.range_query import RangeQueryEngine, range_sum_direct
from repro.core.select_basis import select_minimum_cost_basis
from repro.core.select_redundant import generation_cost
from repro.cube import build_cube, view_element_of
from repro.relational import cube_by, group_by_sum_dict
from repro.workloads import SalesConfig, sales_cube, sales_table


@pytest.fixture(scope="module")
def config() -> SalesConfig:
    return SalesConfig(num_transactions=800, seed=11)


@pytest.fixture(scope="module")
def cube(config):
    return sales_cube(config)


@pytest.fixture(scope="module")
def table(config):
    return sales_table(config)


class TestSelectMaterializeServe:
    def test_assembled_views_match_relational_groupbys(self, cube, table):
        """Full pipeline: Algorithm 1 -> materialize -> assemble -> verify
        against GROUP BY on the original fact table."""
        shape = cube.shape_id
        population = QueryPopulation.uniform_over_views(shape)
        basis = select_minimum_cost_basis(shape, population)
        materialized = MaterializedSet.from_cube(
            cube.values, basis.elements
        )

        names = cube.dimensions.names
        for retained in [("store",), ("product", "store"), ()]:
            element = view_element_of(cube, retained)
            assembled = materialized.assemble(element)
            expected = group_by_sum_dict(table, list(retained), "sales")
            for key, total in expected.items():
                index = [0] * len(names)
                for name, value in zip(retained, key):
                    axis = cube.dimensions.axis_of(name)
                    index[axis] = cube.dimensions[name].encode(value)
                assert assembled[tuple(index)] == pytest.approx(total)

    def test_assembly_cost_matches_prediction(self, cube):
        shape = cube.shape_id
        population = QueryPopulation.uniform_over_views(shape)
        basis = select_minimum_cost_basis(shape, population)
        materialized = MaterializedSet.from_cube(cube.values, basis.elements)
        view = shape.aggregated_view([0, 1])
        counter = OpCounter()
        materialized.assemble(view, counter=counter)
        assert counter.total == generation_cost(view, basis.elements)

    def test_rolap_molap_lattice_agreement(self, cube, table):
        """Every cell of the CUBE operator output appears in the MOLAP
        views assembled from a materialized basis."""
        shape = cube.shape_id
        materialized = MaterializedSet.from_cube(cube.values, [shape.root()])
        lattice = cube_by(
            table, ["product", "store"], "sales"
        )
        # GROUP BY product, store == view aggregating customer and day.
        element = view_element_of(cube, ("product", "store"))
        view = materialized.assemble(element)
        for (product, store), total in lattice[
            frozenset({"product", "store"})
        ].items():
            p = cube.dimensions["product"].encode(product)
            s = cube.dimensions["store"].encode(store)
            assert view[p, s, 0, 0] == pytest.approx(total)


class TestRangeQueriesOnSalesCube:
    def test_range_sums_match_direct(self, cube):
        shape = cube.shape_id
        engine = RangeQueryEngine.with_gaussian_pyramid(cube.values, shape)
        rng = np.random.default_rng(21)
        from repro.workloads import random_ranges

        for ranges in random_ranges(shape, 25, rng):
            answer = engine.range_sum(ranges)
            assert answer.value == pytest.approx(
                range_sum_direct(cube.values, ranges)
            )

    def test_date_range_example(self, cube, table):
        """The paper's motivating query: sales of one product over a date
        range — answered via ranges and via relational filtering."""
        shape = cube.shape_id
        engine = RangeQueryEngine.with_gaussian_pyramid(cube.values, shape)
        product = cube.dimensions["product"].values[0]
        p = cube.dimensions["product"].encode(product)
        lo, hi = 4, 12
        answer = engine.range_sum(
            (
                (p, p + 1),
                (0, shape.sizes[1]),
                (0, shape.sizes[2]),
                (lo, hi),
            )
        )
        expected = sum(
            record["sales"]
            for record in table.records()
            if record["product"] == product and lo <= record["day"] < hi
        )
        assert answer.value == pytest.approx(expected)


class TestAdaptiveOnSalesWorkload:
    def test_drifting_workload_adaptation(self, cube):
        """The assembler tracks a drifting workload and keeps answers
        exact while reducing per-query work on the hot views."""
        shape = cube.shape_id
        assembler = DynamicViewAssembler(
            cube.values, shape, reconfigure_every=30, decay=0.9
        )
        views = list(shape.aggregated_views())
        hot_phases = [views[3], views[9]]
        for phase_view in hot_phases:
            for _ in range(35):
                values = assembler.query(phase_view)
                expected = cube.values.sum(
                    axis=tuple(phase_view.aggregated_dims), keepdims=True
                )
                np.testing.assert_allclose(values, expected, atol=1e-9)
        assert len(assembler.history) >= 2
        # After adapting, the hot view is materialized directly.
        assert hot_phases[-1] in assembler.materialized.elements


class TestSparsePath:
    def test_sparse_build_matches_dense(self, cube):
        from repro.core.element import CubeShape
        from repro.cube import SparseCube

        sparse = SparseCube.from_dense(cube.values, cube.shape_id)
        assert sparse.density < 1.0
        np.testing.assert_array_equal(sparse.densify(), cube.values)
        np.testing.assert_array_equal(
            sparse.total_aggregate([0, 1]),
            cube.values.sum(axis=(0, 1), keepdims=True),
        )
