"""Shared-plan batch assembly: planner (CSE DAG) + executor.

The batch planner merges the per-target assembly routes of
:mod:`repro.core.planning` into one DAG with common-subexpression
elimination, and the executor runs it serially or on a thread pool.  The
contract under test: answers are *bit-identical* to sequential
:meth:`MaterializedSet.assemble` calls, the operation counter is exact
(``counter.total == plan.planned_cost``), and for workloads with shared
structure (the 2^d group-by views) the shared plan performs *strictly
fewer* scalar operations than the per-view assembles combined.
"""

from itertools import combinations

import numpy as np
import pytest

from repro.core.element import CubeShape
from repro.core.exec import BatchPlan, execute_plan, plan_batch
from repro.core.materialize import MaterializedSet
from repro.core.operators import OpCounter
from repro.core.population import QueryPopulation
from repro.core.bases import wavelet_basis
from repro.core.select_basis import select_minimum_cost_basis


def all_group_bys(shape: CubeShape):
    """The 2^d group-by views (every subset of dimensions aggregated)."""
    d = shape.ndim
    return [
        shape.aggregated_view(agg)
        for k in range(d + 1)
        for agg in combinations(range(d), k)
    ]


def pyramid_from_root(shape: CubeShape, rng) -> MaterializedSet:
    ms = MaterializedSet(shape)
    ms.store(shape.root(), rng.standard_normal(shape.sizes))
    return ms


class TestPlanBatch:
    def test_stored_targets_cost_nothing(self, shape_4x4, rng):
        ms = pyramid_from_root(shape_4x4, rng)
        plan = plan_batch([shape_4x4.root()], ms.elements)
        assert plan.planned_cost == 0
        assert all(node.kind == "stored" for node in plan.nodes.values())

    def test_deps_precede_consumers(self, shape_3d, rng):
        ms = pyramid_from_root(shape_3d, rng)
        plan = plan_batch(all_group_bys(shape_3d), ms.elements)
        seen = set()
        for key, node in plan.nodes.items():
            assert all(dep in seen for dep in node.deps), key
            seen.add(key)

    def test_single_target_matches_generation_cost(self, shape_3d, rng):
        """Cascade decomposition is cost-neutral for one target."""
        from repro.core.select_redundant import generation_cost

        ms = pyramid_from_root(shape_3d, rng)
        for target in all_group_bys(shape_3d):
            plan = plan_batch([target], ms.elements)
            assert plan.planned_cost == generation_cost(target, ms.elements)

    def test_incomplete_selection_raises(self, shape_4x4, rng):
        ms = MaterializedSet(shape_4x4)
        # Only a strict descendant stored: the root is unreachable.
        ms.store(shape_4x4.aggregated_view([0]), np.zeros((1, 4)))
        with pytest.raises(ValueError, match="not complete"):
            plan_batch([shape_4x4.root()], ms.elements)

    def test_shape_mismatch_rejected(self, shape_2x2, shape_4x4, rng):
        ms = pyramid_from_root(shape_4x4, rng)
        with pytest.raises(ValueError, match="different cube shape"):
            ms.assemble_batch([shape_2x2.root()])
        with pytest.raises(ValueError, match="different cube shapes"):
            plan_batch([shape_2x2.root(), shape_4x4.root()], ms.elements)

    def test_cse_hits_on_shared_prefix(self, shape_3d, rng):
        ms = pyramid_from_root(shape_3d, rng)
        plan = plan_batch(all_group_bys(shape_3d), ms.elements)
        assert plan.cse_hits > 0
        assert plan.planned_cost < plan.naive_cost


class TestBatchVsSequential:
    @pytest.mark.parametrize("sizes", [(2, 2), (4, 4), (8, 4, 2)])
    def test_group_by_batch_strictly_cheaper_and_bit_identical(self, sizes, rng):
        """The acceptance criterion: over the 2^d group-bys, the shared plan
        performs strictly fewer scalar operations than the per-view
        assembles combined, with bit-identical answers."""
        shape = CubeShape(sizes)
        ms = pyramid_from_root(shape, rng)
        targets = all_group_bys(shape)

        seq_counter = OpCounter()
        expected = {t: ms.assemble(t, counter=seq_counter) for t in targets}
        batch_counter = OpCounter()
        actual = ms.assemble_batch(targets, counter=batch_counter)

        assert set(actual) == set(targets)
        for target in targets:
            np.testing.assert_array_equal(actual[target], expected[target])
        assert batch_counter.total < seq_counter.total

    def test_counter_matches_planned_cost(self, shape_3d, rng):
        ms = pyramid_from_root(shape_3d, rng)
        targets = all_group_bys(shape_3d)
        plan = plan_batch(targets, ms.elements)
        counter = OpCounter()
        ms.assemble_batch(targets, counter=counter)
        assert counter.total == plan.planned_cost

    def test_wavelet_basis_bit_identical(self, shape_3d, rng):
        """Synthesis-heavy routes (residual elements stored) stay exact."""
        ms = MaterializedSet.from_cube(
            rng.standard_normal(shape_3d.sizes), wavelet_basis(shape_3d)
        )
        targets = all_group_bys(shape_3d)
        expected = {t: ms.assemble(t) for t in targets}
        actual = ms.assemble_batch(targets)
        for target in targets:
            np.testing.assert_array_equal(actual[target], expected[target])

    def test_algorithm1_basis_bit_identical(self, shape_3d, rng):
        population = QueryPopulation.random_over_views(shape_3d, rng)
        selection = select_minimum_cost_basis(shape_3d, population)
        ms = MaterializedSet.from_cube(
            rng.standard_normal(shape_3d.sizes), list(selection.elements)
        )
        targets = [query for query, f in population if f > 0]
        seq_counter = OpCounter()
        expected = {t: ms.assemble(t, counter=seq_counter) for t in targets}
        batch_counter = OpCounter()
        actual = ms.assemble_batch(targets, counter=batch_counter)
        for target in targets:
            np.testing.assert_array_equal(actual[target], expected[target])
        assert batch_counter.total <= seq_counter.total

    def test_duplicate_and_stored_targets(self, shape_4x4, rng):
        ms = pyramid_from_root(shape_4x4, rng)
        targets = all_group_bys(shape_4x4)
        batch = targets[:2] + targets[:2] + [shape_4x4.root()]
        results = ms.assemble_batch(batch)
        for target in batch:
            np.testing.assert_array_equal(results[target], ms.assemble(target))

    def test_empty_batch(self, shape_4x4, rng):
        ms = pyramid_from_root(shape_4x4, rng)
        assert ms.assemble_batch([]) == {}


class TestThreadedExecution:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_threaded_equals_serial(self, shape_3d, rng, workers):
        ms = pyramid_from_root(shape_3d, rng)
        targets = all_group_bys(shape_3d)
        serial_counter = OpCounter()
        serial = ms.assemble_batch(targets, counter=serial_counter)
        threaded_counter = OpCounter()
        threaded = ms.assemble_batch(
            targets, counter=threaded_counter, max_workers=workers
        )
        for target in targets:
            np.testing.assert_array_equal(serial[target], threaded[target])
        assert threaded_counter.total == serial_counter.total

    def test_threaded_synthesis_routes(self, shape_3d, rng):
        ms = MaterializedSet.from_cube(
            rng.standard_normal(shape_3d.sizes), wavelet_basis(shape_3d)
        )
        targets = all_group_bys(shape_3d)
        serial = ms.assemble_batch(targets)
        threaded = ms.assemble_batch(targets, max_workers=3)
        for target in targets:
            np.testing.assert_array_equal(serial[target], threaded[target])


class TestExecutePlanDirect:
    def test_execute_reuses_prebuilt_plan(self, shape_4x4, rng):
        ms = pyramid_from_root(shape_4x4, rng)
        targets = all_group_bys(shape_4x4)
        plan = plan_batch(targets, ms.elements)
        assert isinstance(plan, BatchPlan)
        counter = OpCounter()
        results = execute_plan(
            plan, {e: ms.array(e) for e in ms.elements}, counter=counter
        )
        for target in targets:
            np.testing.assert_array_equal(results[target], ms.assemble(target))
        assert counter.total == plan.planned_cost

    def test_cse_ratio_bounds(self, shape_3d, rng):
        ms = pyramid_from_root(shape_3d, rng)
        plan = plan_batch(all_group_bys(shape_3d), ms.elements)
        assert 0.0 <= plan.cse_ratio <= 1.0


class TestPooledFailureHandling:
    """The executor's failure discipline: drain, merge, re-raise."""

    def test_worker_fault_is_raised_and_partials_merged(self, shape_3d, rng):
        from repro.errors import TransientFault
        from repro.resilience import FaultInjector, FaultRule

        ms = pyramid_from_root(shape_3d, rng)
        targets = all_group_bys(shape_3d)
        clean_counter = OpCounter()
        ms.assemble_batch(targets, counter=clean_counter)

        injector = FaultInjector(
            [
                FaultRule(
                    site="exec.compute_node",
                    kind="error",
                    probability=1.0,
                    max_fires=1,
                )
            ],
            seed=5,
        )
        counter = OpCounter()
        with injector.activate():
            with pytest.raises(TransientFault):
                ms.assemble_batch(targets, counter=counter, max_workers=2)
        # Exactly one node failed; whatever completed before the abort is
        # accounted, and nothing beyond the clean total can appear.
        assert 0 <= counter.total < clean_counter.total

    def test_pool_is_reusable_after_a_fault(self, shape_3d, rng):
        from repro.errors import TransientFault
        from repro.resilience import FaultInjector, FaultRule

        ms = pyramid_from_root(shape_3d, rng)
        targets = all_group_bys(shape_3d)
        expected = ms.assemble_batch(targets)
        injector = FaultInjector(
            [
                FaultRule(
                    site="exec.compute_node",
                    kind="error",
                    probability=1.0,
                    max_fires=1,
                )
            ],
            seed=5,
        )
        with injector.activate():
            with pytest.raises(TransientFault):
                ms.assemble_batch(targets, max_workers=2)
            # max_fires exhausted: the very next batch succeeds, identically.
            recovered = ms.assemble_batch(targets, max_workers=2)
        for target in targets:
            np.testing.assert_array_equal(recovered[target], expected[target])

    def test_expired_deadline_aborts_pooled_execution(self, shape_3d, rng):
        from repro.errors import QueryTimeout
        from repro.resilience import Deadline, deadline_scope

        ms = pyramid_from_root(shape_3d, rng)
        targets = all_group_bys(shape_3d)
        with deadline_scope(Deadline.after(-0.001)):
            with pytest.raises(QueryTimeout):
                ms.assemble_batch(targets, max_workers=2)

    def test_expired_deadline_aborts_serial_execution(self, shape_3d, rng):
        from repro.errors import QueryTimeout
        from repro.resilience import Deadline, deadline_scope

        ms = pyramid_from_root(shape_3d, rng)
        with deadline_scope(Deadline.after(-0.001)):
            with pytest.raises(QueryTimeout):
                ms.assemble(shape_3d.aggregated_view((0,)))

    def test_counter_merge_folds_totals_and_events(self):
        left = OpCounter()
        left.add(additions=2, label="a")
        right = OpCounter()
        right.add(subtractions=3, label="b")
        left.merge(right)
        assert left.additions == 2
        assert left.subtractions == 3
        assert [label for label, *_ in left.events] == ["a", "b"]
