"""Tests for the relational substrate: schema, table, GROUP BY, CUBE."""

from __future__ import annotations

import numpy as np
import pytest

from repro.relational import (
    ALL,
    ColumnSpec,
    Schema,
    Table,
    cube_by,
    cube_by_table,
    group_by_sum,
    group_by_sum_dict,
)


@pytest.fixture
def schema() -> Schema:
    return Schema.star(functional=["product", "store"], measures=["sales"])


@pytest.fixture
def table(schema) -> Table:
    records = [
        {"product": "pen", "store": "A", "sales": 2.0},
        {"product": "pen", "store": "B", "sales": 3.0},
        {"product": "ink", "store": "A", "sales": 5.0},
        {"product": "pen", "store": "A", "sales": 1.0},
    ]
    return Table.from_records(schema, records)


class TestSchema:
    def test_roles(self, schema):
        assert schema.functional_names == ("product", "store")
        assert schema.measure_names == ("sales",)
        assert "product" in schema
        assert schema["sales"].is_measure

    def test_invalid_role(self):
        with pytest.raises(ValueError, match="role"):
            ColumnSpec("x", role="weird")

    def test_duplicate_names(self):
        with pytest.raises(ValueError, match="duplicate"):
            Schema([ColumnSpec("a"), ColumnSpec("a")])

    def test_empty(self):
        with pytest.raises(ValueError, match="at least one column"):
            Schema([])

    def test_unknown_column(self, schema):
        with pytest.raises(KeyError, match="unknown column"):
            schema["nope"]


class TestTable:
    def test_from_records_and_len(self, table):
        assert len(table) == 4
        assert table.num_rows == 4

    def test_missing_column(self, schema):
        with pytest.raises(KeyError, match="missing column"):
            Table.from_records(schema, [{"product": "pen", "sales": 1.0}])

    def test_column_length_mismatch(self, schema):
        with pytest.raises(ValueError, match="differing lengths"):
            Table(schema, {"product": ["a"], "store": ["A", "B"], "sales": [1.0]})

    def test_extra_column_rejected(self, schema):
        with pytest.raises(ValueError, match="not in the schema"):
            Table(
                schema,
                {
                    "product": [],
                    "store": [],
                    "sales": [],
                    "bogus": [],
                },
            )

    def test_measure_column_is_float(self, table):
        assert table.column("sales").dtype == np.float64

    def test_project(self, table):
        projected = table.project(["product", "sales"])
        assert projected.schema.names == ("product", "sales")
        assert len(projected) == 4

    def test_filter(self, table):
        small = table.filter(lambda row: row["sales"] > 2.0)
        assert len(small) == 2

    def test_where_equals(self, table):
        pens = table.where_equals("product", "pen")
        assert len(pens) == 3

    def test_head_and_records(self, table):
        assert len(table.head(2)) == 2
        assert len(table.records()) == 4


class TestGroupBy:
    def test_group_by_one_column(self, table):
        result = group_by_sum_dict(table, ["product"], "sales")
        assert result[("pen",)] == pytest.approx(6.0)
        assert result[("ink",)] == pytest.approx(5.0)

    def test_group_by_two_columns(self, table):
        result = group_by_sum_dict(table, ["product", "store"], "sales")
        assert result[("pen", "A")] == pytest.approx(3.0)
        assert result[("pen", "B")] == pytest.approx(3.0)

    def test_grand_total(self, table):
        assert group_by_sum_dict(table, [], "sales") == {(): 11.0}

    def test_group_by_measure_rejected(self, table):
        with pytest.raises(ValueError, match="group by measure"):
            group_by_sum_dict(table, ["sales"], "sales")

    def test_sum_of_non_measure_rejected(self, table):
        with pytest.raises(ValueError, match="not a measure"):
            group_by_sum_dict(table, ["product"], "store")

    def test_group_by_as_table(self, table):
        result = group_by_sum(table, ["product"], "sales")
        assert len(result) == 2
        assert set(result.column("product")) == {"pen", "ink"}


class TestCubeOperator:
    def test_lattice_shape(self, table):
        lattice = cube_by(table, ["product", "store"], "sales")
        assert len(lattice) == 4  # 2^2 group-bys
        assert lattice[frozenset()][()] == pytest.approx(11.0)
        assert lattice[frozenset({"product"})][("pen",)] == pytest.approx(6.0)

    def test_flattened_table_with_all(self, table):
        flat = cube_by_table(table, ["product", "store"], "sales")
        # Rows: 1 (grand total) + 2 (by product) + 2 (by store) + 3 (pairs).
        assert len(flat) == 8
        markers = [v for v in flat.column("product") if v is ALL]
        assert len(markers) == 3  # grand total + the two store rows

    def test_all_is_singleton(self):
        from repro.relational.cube_operator import _AllValue

        assert _AllValue() is ALL
        assert repr(ALL) == "ALL"

    def test_cube_matches_molap(self, table):
        """The ROLAP CUBE and the MOLAP view lattice agree everywhere."""
        from repro.cube import build_cube, all_views

        cube = build_cube(table.records(), ["product", "store"], "sales")
        molap = all_views(cube)
        rolap = cube_by(table, ["product", "store"], "sales")
        product_dim = cube.dimensions["product"]
        store_dim = cube.dimensions["store"]
        for (product,), total in rolap[frozenset({"product"})].items():
            molap_value = molap[frozenset({"product"})][
                product_dim.encode(product), 0
            ]
            assert molap_value == pytest.approx(total)
        for key, total in rolap[frozenset({"product", "store"})].items():
            product, store = key
            value = molap[frozenset({"product", "store"})][
                product_dim.encode(product), store_dim.encode(store)
            ]
            assert value == pytest.approx(total)
        assert molap[frozenset()].item() == pytest.approx(
            rolap[frozenset()][()]
        )


class TestRollupOperator:
    def test_prefix_groupbys(self, table):
        from repro.relational import rollup_by

        result = rollup_by(table, ["product", "store"], "sales")
        assert set(result) == {("product", "store"), ("product",), ()}
        assert result[()][()] == pytest.approx(11.0)
        assert result[("product",)][("pen",)] == pytest.approx(6.0)
        assert result[("product", "store")][("pen", "A")] == pytest.approx(3.0)

    def test_rollup_is_subset_of_cube(self, table):
        from repro.relational import cube_by, rollup_by

        cube = cube_by(table, ["product", "store"], "sales")
        rolled = rollup_by(table, ["product", "store"], "sales")
        for prefix, groups in rolled.items():
            assert groups == cube[frozenset(prefix)]
