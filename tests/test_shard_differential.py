"""Shard-vs-monolith differential harness: byte-identity of serving.

The merge-exactness invariant under test: for every (dims, dtype, shard
count, backend) combination, scatter–gather assembly over
:class:`~repro.shard.ShardedSet` returns **bit-identical** bytes to
monolithic :class:`~repro.core.materialize.MaterializedSet` assembly —
integer-valued cubes on any shard axis, float cubes on the last-dimension
axis (where the merge preserves canonical step order).  Styled on
``test_exec.py``: strict operation accounting rides along with the
byte comparisons.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.element import CubeShape, ElementId
from repro.core.materialize import MaterializedSet
from repro.core.operators import OpCounter
from repro.cube.datacube import DataCube
from repro.cube.dimensions import Dimension
from repro.server import OLAPServer
from repro.shard import CubePartition, ShardedSet, shard_axis_for


def all_group_bys(shape: CubeShape):
    d = shape.ndim
    return [
        shape.aggregated_view(agg)
        for k in range(d + 1)
        for agg in combinations(range(d), k)
    ]


def _random_sizes(rng, ndim: int, sorted_ascending: bool = False):
    sizes = [int(2 ** rng.integers(1, 5)) for _ in range(ndim)]
    if sorted_ascending:
        sizes.sort()
    return tuple(sizes)


def _random_element(shape: CubeShape, rng) -> ElementId:
    """A uniformly random (possibly residual) view element."""
    nodes = []
    for depth in shape.depths:
        k = int(rng.integers(0, depth + 1))
        j = int(rng.integers(0, 1 << k))
        nodes.append((k, j))
    return ElementId(shape, tuple(nodes))


def _shard_counts(shape: CubeShape):
    axis_extent = shape.sizes[shard_axis_for(shape)]
    return [s for s in (1, 2, 4) if s <= axis_extent]


def _sharded_pair(shape, values, shards):
    mono = MaterializedSet(shape)
    mono.store(shape.root(), values)
    part = CubePartition.for_shape(shape, shards)
    sharded = ShardedSet(part, base_values=values)
    sharded.store(shape.root(), values)
    return mono, sharded


class TestPartitionMath:
    def test_default_axis_prefers_largest_then_last(self):
        assert shard_axis_for(CubeShape((4, 8, 2))) == 1
        assert shard_axis_for(CubeShape((8, 8, 8))) == 2

    def test_validation(self):
        shape = CubeShape((8, 4))
        with pytest.raises(ValueError, match="power of two"):
            CubePartition.for_shape(shape, 3)
        with pytest.raises(ValueError, match="exceed axis extent"):
            CubePartition.for_shape(shape, 16)
        with pytest.raises(ValueError, match="outside"):
            CubePartition.for_shape(shape, 2, axis=5)

    def test_projection_identity_within_slab(self):
        shape = CubeShape((8, 16))
        part = CubePartition.for_shape(shape, 4)  # axis 1, W=4, w=2
        element = ElementId(shape, ((1, 0), (2, 3)))
        local = part.project(element)
        assert local.nodes == ((1, 0), (2, 3))
        assert part.merge_steps(element) == ()

    def test_projection_truncates_past_slab_depth(self):
        shape = CubeShape((8, 16))
        part = CubePartition.for_shape(shape, 4)  # axis 1, W=4, w=2
        element = ElementId(shape, ((0, 0), (4, 13)))  # j=0b1101
        local = part.project(element)
        # High w=2 bits of j stay local; low 2 bits become the merge.
        assert local.nodes[1] == (2, 13 >> 2)
        steps = part.merge_steps(element)
        assert steps == ((1, False), (1, True))  # low bits 0b01, MSB first

    def test_slab_concatenation_covers_cube(self):
        shape = CubeShape((4, 8))
        part = CubePartition.for_shape(shape, 2)
        values = np.arange(32, dtype=np.float64).reshape(4, 8)
        rebuilt = np.concatenate(
            [part.slab(values, s) for s in range(2)], axis=part.axis
        )
        np.testing.assert_array_equal(rebuilt, values)

    def test_unsplittable_store_rejected(self):
        shape = CubeShape((4, 8))
        part = CubePartition.for_shape(shape, 4)  # w=1
        sharded = ShardedSet(part)
        deep = ElementId(shape, ((0, 0), (3, 0)))
        with pytest.raises(ValueError, match="does not split"):
            sharded.store(deep, np.zeros(deep.data_shape))


class TestSetDifferential:
    """Integer cubes: byte-identity on any shard axis, 1-4 dims."""

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_group_bys_and_residuals_bit_identical(self, seed):
        rng = np.random.default_rng(seed)
        shape = CubeShape(_random_sizes(rng, int(rng.integers(1, 5))))
        values = rng.integers(0, 100, size=shape.sizes).astype(np.float64)
        targets = all_group_bys(shape) + [
            _random_element(shape, rng) for _ in range(3)
        ]
        for shards in _shard_counts(shape):
            mono, sharded = _sharded_pair(shape, values, shards)
            expected = mono.assemble_batch(targets)
            actual = sharded.assemble_batch(targets)
            assert set(actual) == set(expected)
            for target in expected:
                assert (
                    actual[target].tobytes() == expected[target].tobytes()
                ), (shards, target.describe())

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_single_assembles_match_batch(self, seed):
        rng = np.random.default_rng(seed)
        shape = CubeShape(_random_sizes(rng, 3))
        values = rng.integers(0, 50, size=shape.sizes).astype(np.float64)
        targets = [_random_element(shape, rng) for _ in range(4)]
        for shards in _shard_counts(shape)[1:]:
            mono, sharded = _sharded_pair(shape, values, shards)
            for target in targets:
                assert (
                    sharded.assemble(target).tobytes()
                    == mono.assemble(target).tobytes()
                )

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_migrated_selection_bit_identical(self, seed):
        """Reconfigure path: per-shard migration preserves byte-identity."""
        rng = np.random.default_rng(seed)
        shape = CubeShape(_random_sizes(rng, 3))
        values = rng.integers(0, 50, size=shape.sizes).astype(np.float64)
        stored = [shape.root()] + [
            shape.aggregated_view((m,)) for m in range(shape.ndim)
        ]
        targets = all_group_bys(shape)
        mono = MaterializedSet(shape)
        mono.store(shape.root(), values)
        for e in sorted(stored, key=lambda e: e.depth):
            mono.store(e, mono.assemble(e))
        for shards in _shard_counts(shape)[1:]:
            part = CubePartition.for_shape(shape, shards)
            old = ShardedSet(part, base_values=values)
            old.store(shape.root(), values)
            new = ShardedSet(part, base_values=values)
            new.migrate_selection(stored, old)
            assert set(new.elements) == set(stored)
            for target in targets:
                assert (
                    new.assemble(target).tobytes()
                    == mono.assemble(target).tobytes()
                )


class TestFloatBitIdentity:
    """Float cubes: exact on the last-dimension shard axis.

    With ascending-sorted extents the default axis rule picks the last
    dimension, so the shard-local steps plus the merge replay the
    canonical cascade in the same order — identical rounding, identical
    bytes even for irrational float data.
    """

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_last_axis_float_bit_identical(self, seed):
        rng = np.random.default_rng(seed)
        ndim = int(rng.integers(1, 5))
        shape = CubeShape(_random_sizes(rng, ndim, sorted_ascending=True))
        values = rng.standard_normal(shape.sizes)
        targets = all_group_bys(shape)
        for shards in _shard_counts(shape):
            mono, sharded = _sharded_pair(shape, values, shards)
            expected = mono.assemble_batch(targets)
            actual = sharded.assemble_batch(targets)
            for target in targets:
                assert (
                    actual[target].tobytes() == expected[target].tobytes()
                ), (shards, target.describe())


class TestOpAccounting:
    """Strict-ops: scatter-gather work accounting stays exact."""

    def test_single_target_op_parity_with_monolith(self, rng):
        """Per-shard cascades plus the merge perform exactly the ops of
        the monolithic cascade: Vol - Vol(T) scalar additions split as
        S*(Vol/S - Vol(L)) + (S*Vol(L) - Vol(T))."""
        shape = CubeShape((8, 16, 16))
        values = rng.integers(0, 9, size=shape.sizes).astype(np.float64)
        target = shape.aggregated_view((0, 1, 2))
        for shards in (2, 4):
            mono, sharded = _sharded_pair(shape, values, shards)
            mono_counter = OpCounter()
            mono.assemble(target, counter=mono_counter)
            shard_counter = OpCounter()
            sharded.assemble(target, counter=shard_counter)
            assert shard_counter.total == mono_counter.total

    def test_scatter_stats_reported(self, rng):
        shape = CubeShape((8, 16))
        values = rng.integers(0, 9, size=shape.sizes).astype(np.float64)
        _, sharded = _sharded_pair(shape, values, 4)
        sharded.assemble_batch(all_group_bys(shape))
        stats = sharded.last_scatter_stats
        assert stats["shards"] == 4
        assert stats["plans"] == 1  # uniform storage: one shared plan
        assert stats["degraded_shards"] == []
        assert stats["merge_ops"] > 0

    def test_shared_plan_cache_reused(self, rng):
        shape = CubeShape((8, 16))
        values = rng.integers(0, 9, size=shape.sizes).astype(np.float64)
        _, sharded = _sharded_pair(shape, values, 2)
        targets = all_group_bys(shape)
        first = sharded.assemble_batch(targets, counter=OpCounter())
        second = sharded.assemble_batch(targets, counter=OpCounter())
        for target in targets:
            assert first[target].tobytes() == second[target].tobytes()
        assert len(sharded._plan_cache) == 1


class TestServerDifferential:
    """Server layer: point/range/rollup/batch, thread + process backends."""

    @staticmethod
    def _server(seed, sizes, **kwargs):
        rng = np.random.default_rng(seed)
        values = rng.integers(0, 100, size=sizes).astype(np.float64)
        dims = [
            Dimension(f"d{i}", list(range(n))) for i, n in enumerate(sizes)
        ]
        return OLAPServer(DataCube(values, dims, measure="amount"), **kwargs)

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_thread_backend_serving_bit_identical(self, seed):
        sizes = (8, 8, 16)
        names = ["d0", "d1", "d2"]
        mono = self._server(seed, sizes)
        rng = np.random.default_rng(seed + 1)
        requests = [[], ["d0"], ["d1", "d2"], names]
        ranges = tuple(
            tuple(sorted(rng.integers(0, n + 1, size=2))) for n in sizes
        )
        cell = {n: int(rng.integers(0, s)) for n, s in zip(names, sizes)}
        expected_views = [
            a.tobytes() for a in mono.query_batch(requests, max_workers=2)
        ]
        expected_rollup = mono.rollup({"d0": 1, "d2": 2}).tobytes()
        expected_range = mono.range_sum(ranges)
        expected_cell = mono.cell(**cell)
        for shards in (2, 4):
            sharded = self._server(seed, sizes, shards=shards)
            actual = [
                a.tobytes()
                for a in sharded.query_batch(requests, max_workers=2)
            ]
            assert actual == expected_views, shards
            assert (
                sharded.rollup({"d0": 1, "d2": 2}).tobytes()
                == expected_rollup
            )
            assert sharded.range_sum(ranges) == expected_range
            assert sharded.cell(**cell) == expected_cell

    @pytest.mark.parametrize("shards", [2, 4])
    def test_process_backend_serving_bit_identical(self, shards):
        """Force the shared-memory tier (process_threshold=1) and compare."""
        sizes = (4, 8, 8)
        mono = self._server(3, sizes)
        requests = [[], ["d0"], ["d1"], ["d0", "d2"]]
        expected = [a.tobytes() for a in mono.query_batch(requests)]
        sharded = self._server(3, sizes, shards=shards)
        actual = [
            a.tobytes()
            for a in sharded.query_batch(
                requests,
                max_workers=2,
                backend="process",
                process_threshold=1,
            )
        ]
        assert actual == expected

    def test_batch_yields_one_connected_trace_with_shard_lanes(self):
        server = self._server(5, (8, 8, 8), shards=2)
        server.query_batch([["d0"], ["d1"], ["d0", "d1"]])
        spans = server.tracer.trace()
        trace_ids = {s.trace_id for s in spans}
        assert len(trace_ids) == 1
        span_ids = {s.span_id for s in spans}
        for s in spans:
            assert s.parent_id is None or s.parent_id in span_ids
        lanes = [s for s in spans if s.name == "shard.execute"]
        assert sorted(s.attributes["shard"] for s in lanes) == [0, 1]
        execs = [s for s in spans if s.name == "exec.execute"]
        assert {s.attributes.get("shard") for s in execs} == {0, 1}

    def test_sharded_health_reports_shards_section(self):
        server = self._server(5, (8, 8), shards=2)
        server.view(["d0"])
        health = server.health()
        shards = health["shards"]
        assert shards["count"] == 2
        assert len(shards["per_shard"]) == 2
        assert all(entry["quarantined"] == 0 for entry in shards["per_shard"])
        # Monolithic servers have no shards section.
        assert "shards" not in self._server(5, (8, 8)).health()
