"""Tests for the sparse-relation CUBE computation ([10] substrate)."""

from __future__ import annotations

import itertools

import pytest

from repro.relational import (
    Schema,
    Table,
    group_by_sum_dict,
    naive_cube_work,
    sparse_cube,
)
from repro.workloads import SalesConfig, generate_sales_records


@pytest.fixture(scope="module")
def records() -> list[dict]:
    return generate_sales_records(
        SalesConfig(num_transactions=500, num_days=8, seed=61)
    )


@pytest.fixture(scope="module")
def result(records):
    return sparse_cube(records, ["product", "store", "day"], "sales")


class TestCorrectness:
    def test_all_subsets_present(self, result):
        keys = set(result.groupbys)
        expected = set()
        attrs = ("product", "store", "day")
        for r in range(4):
            for combo in itertools.combinations(attrs, r):
                expected.add(combo)
        assert keys == expected

    def test_matches_independent_groupbys(self, records, result):
        schema = Schema.star(["product", "store", "day"], ["sales"])
        table = Table.from_records(schema, records)
        for retained in result.groupbys:
            expected = group_by_sum_dict(table, list(retained), "sales")
            got = result.groupbys[retained]
            assert got.keys() == expected.keys()
            for key in expected:
                assert got[key] == pytest.approx(expected[key])

    def test_view_reordering(self, result):
        forward = result.view(["product", "store"])
        backward = result.view(["store", "product"])
        for (product, store), total in forward.items():
            assert backward[(store, product)] == pytest.approx(total)

    def test_unknown_view(self, result):
        with pytest.raises(KeyError, match="no group-by"):
            result.view(["bogus"])

    def test_grand_total(self, records, result):
        assert result.view([])[()] == pytest.approx(
            sum(r["sales"] for r in records)
        )


class TestWorkSavings:
    def test_beats_naive_rescans(self, records, result):
        """[10]'s point: collapsed recursion touches far fewer tuples."""
        naive = naive_cube_work(len(records), 3)
        assert result.tuples_touched < naive

    def test_duplicate_heavy_relation_collapses_early(self):
        """A relation with massive duplication is collapsed at the root."""
        records = [
            {"a": i % 2, "b": i % 2, "m": 1.0} for i in range(1000)
        ]
        result = sparse_cube(records, ["a", "b"], "m")
        # Root collapse leaves 2 distinct rows; the keep/drop recursion
        # tree has 2^(d+1) - 1 = 7 nodes, each touching <= 2 rows.
        assert result.tuples_touched <= 2 * 7
        assert result.view(["a"])[(0,)] == pytest.approx(500.0)


class TestEdgeCases:
    def test_empty_relation(self):
        result = sparse_cube([], ["a"], "m")
        assert result.view([]) == {}
        assert result.view(["a"]) == {}

    def test_single_attribute(self):
        records = [{"a": "x", "m": 2.0}, {"a": "y", "m": 3.0}]
        result = sparse_cube(records, ["a"], "m")
        assert result.view(["a"]) == {("x",): 2.0, ("y",): 3.0}
        assert result.view([])[()] == 5.0
