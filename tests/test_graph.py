"""Tests for the view element graph and its flat indexing (paper §4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.element import CubeShape, ElementId
from repro.core.graph import (
    ViewElementGraph,
    dim_node_to_heap,
    heap_to_dim_node,
)


class TestHeapNumbering:
    def test_round_trip(self):
        for t in range(31):
            level, index = heap_to_dim_node(t)
            assert dim_node_to_heap(level, index) == t

    def test_known_values(self):
        assert heap_to_dim_node(0) == (0, 0)
        assert heap_to_dim_node(1) == (1, 0)
        assert heap_to_dim_node(2) == (1, 1)
        assert heap_to_dim_node(3) == (2, 0)
        assert heap_to_dim_node(6) == (2, 3)


class TestCounts:
    @pytest.mark.parametrize(
        "sizes", [(2, 2), (4, 4), (8, 4, 2), (4, 4, 4)]
    )
    def test_formulas_match_enumeration(self, sizes):
        graph = ViewElementGraph(CubeShape(sizes))
        elements = list(graph.elements())
        assert len(elements) == graph.num_elements
        assert len(set(elements)) == graph.num_elements
        assert (
            sum(1 for e in elements if e.is_aggregated_view)
            == graph.num_aggregated_views
        )
        assert (
            sum(1 for e in elements if e.is_intermediate)
            == graph.num_intermediate
        )
        assert (
            sum(1 for e in elements if e.is_residual) == graph.num_residual
        )

    def test_generation_and_storage_costs(self):
        graph = ViewElementGraph(CubeShape((4, 4)))
        assert graph.num_blocks == 9
        assert graph.generation_cost() == 8 * 16
        assert graph.full_storage_cost() == 9 * 16


class TestTraversal:
    def test_blocks_cover_all_level_vectors(self, shape_3d):
        graph = ViewElementGraph(shape_3d)
        blocks = list(graph.blocks())
        assert len(blocks) == graph.num_blocks
        assert blocks[0] == (0, 0, 0)
        depths = [sum(b) for b in blocks]
        assert depths == sorted(depths)

    def test_elements_at_level(self, shape_4x4):
        graph = ViewElementGraph(shape_4x4)
        block = list(graph.elements_at_level((1, 2)))
        assert len(block) == 2 * 4  # 2^1 * 2^2 dyadic indices
        assert all(e.nodes[0][0] == 1 and e.nodes[1][0] == 2 for e in block)

    def test_elements_at_level_arity_check(self, shape_4x4):
        graph = ViewElementGraph(shape_4x4)
        with pytest.raises(ValueError, match="dimensionality"):
            list(graph.elements_at_level((1,)))

    def test_intermediate_elements_one_per_block(self, shape_4x4):
        graph = ViewElementGraph(shape_4x4)
        inter = list(graph.intermediate_elements())
        assert len(inter) == graph.num_blocks
        assert all(e.is_intermediate for e in inter)

    def test_descendants(self, shape_4x4):
        graph = ViewElementGraph(shape_4x4)
        p0 = shape_4x4.root().partial_child(0)
        descendants = list(graph.descendants(p0))
        assert p0 not in descendants
        assert all(p0.contains(d) for d in descendants)
        # Per dim 0: subtree below (1,0) has 3 nodes incl. itself; dim 1
        # full tree has 7; total combinations minus the element itself.
        assert len(descendants) == 3 * 7 - 1


class TestFlatIndexing:
    def test_index_round_trip(self, shape_3d):
        graph = ViewElementGraph(shape_3d)
        for element in graph.elements():
            index = graph.element_to_index(element)
            assert graph.index_to_element(index) == element

    def test_index_arrays_consistency(self, shape_4x4):
        """The vectorized tables agree with the object-level algebra."""
        graph = ViewElementGraph(shape_4x4)
        tables = graph.index_arrays()
        n = graph.num_elements
        assert tables["volume"].shape == (n,)
        for index in range(n):
            element = graph.index_to_element(index)
            assert tables["volume"][index] == element.volume
            assert tables["depth"][index] == element.depth
            for dim in range(shape_4x4.ndim):
                level, dyadic = element.nodes[dim]
                assert tables["levels"][index, dim] == level
                assert tables["indices"][index, dim] == dyadic
                if level > 0:
                    parent = graph.element_to_index(element.parent(dim))
                    assert tables["parent"][index, dim] == parent
                else:
                    assert tables["parent"][index, dim] == -1
                if element.can_split(dim):
                    p, r = element.children(dim)
                    assert tables["p_child"][index, dim] == graph.element_to_index(p)
                    assert tables["r_child"][index, dim] == graph.element_to_index(r)
                else:
                    assert tables["p_child"][index, dim] == -1
                    assert tables["r_child"][index, dim] == -1

    def test_volume_totals(self, shape_4x4):
        tables = ViewElementGraph(shape_4x4).index_arrays()
        # Each block is non-expansive, so total cells = blocks * Vol(A).
        assert tables["volume"].sum() == 9 * 16
