"""Workload fingerprinting: tracker, analytic trace fingerprint, profile
library round-trip, and the per-site continuous profiler.

The acceptance property lives in ``TestRoundTrip``: a profile library
keyed by :func:`fingerprint_of_trace` must let a *live* server replaying
that same trace recognize its regime — the server's decayed fingerprint
converges close enough that ``nearest()`` picks the right entry, and
``health()`` surfaces it.
"""

import pytest

from repro.obs import Tracer
from repro.obs.fingerprint import (
    FingerprintTracker,
    ProfileLibrary,
    SiteProfiler,
    WorkloadFingerprint,
    fingerprint_of_trace,
)
from repro.soak import SoakConfig, generate_soak_trace, run_soak

TINY = SoakConfig(
    sizes=(16, 8, 4),
    batches=12,
    phase_batches=4,
    batch_size=3,
    burst_every=4,
    burst_cells=8,
)


class TestWorkloadFingerprint:
    def test_vector_and_distance(self):
        a = WorkloadFingerprint(view_frac=1.0)
        b = WorkloadFingerprint(rollup_frac=1.0)
        assert a.distance(a) == 0.0
        assert a.distance(b) == pytest.approx(2**0.5)
        assert len(a.to_vector()) == 6

    def test_dict_round_trip(self):
        fp = WorkloadFingerprint(0.5, 0.25, 0.25, 0.8, 0.3, 0.1)
        assert WorkloadFingerprint.from_dict(fp.to_dict()) == fp
        # Missing keys default to zero (forward compatibility).
        assert WorkloadFingerprint.from_dict({}) == WorkloadFingerprint()


class TestFingerprintTracker:
    def test_mix_fractions(self):
        tracker = FingerprintTracker(decay=1.0)
        for _ in range(7):
            tracker.note_query("view")
        for _ in range(2):
            tracker.note_query("rollup")
        tracker.note_query("range")
        fp = tracker.fingerprint()
        assert fp.view_frac == pytest.approx(0.7)
        assert fp.rollup_frac == pytest.approx(0.2)
        assert fp.range_frac == pytest.approx(0.1)

    def test_empty_tracker_is_zero(self):
        assert FingerprintTracker().fingerprint() == WorkloadFingerprint()

    def test_unknown_kind_ignored(self):
        tracker = FingerprintTracker()
        tracker.note_query("mystery")
        assert tracker.queries == 0

    def test_decay_forgets_old_regime(self):
        tracker = FingerprintTracker(decay=0.5)
        for _ in range(20):
            tracker.note_query("view")
        for _ in range(20):
            tracker.note_query("range")
        fp = tracker.fingerprint()
        # After 20 half-life ticks the view era is noise.
        assert fp.range_frac > 0.99

    def test_hot_share_reflects_skew(self):
        skewed = FingerprintTracker(decay=1.0, hot_top=2)
        uniform = FingerprintTracker(decay=1.0, hot_top=2)
        for i in range(100):
            skewed.note_query("view", ("view", i % 2))
            uniform.note_query("view", ("view", i))
        assert skewed.fingerprint().hot_share == pytest.approx(1.0)
        assert uniform.fingerprint().hot_share == pytest.approx(0.02)

    def test_element_table_bounded_evicts_lightest(self):
        tracker = FingerprintTracker(decay=1.0, max_elements=4)
        heavy = ("view", "heavy")
        for _ in range(10):
            tracker.note_query("view", heavy)
        for i in range(10):
            tracker.note_query("view", ("view", f"light-{i}"))
        assert len(tracker._elements) == 4
        assert tracker.evicted_elements == 7
        assert heavy in tracker._elements  # the heavy key survives

    def test_ingest_and_divergence_norms(self):
        tracker = FingerprintTracker(decay=1.0)
        tracker.note_query("view")
        tracker.note_ingest(3)
        fp = tracker.fingerprint()
        assert fp.ingest_norm == pytest.approx(3 / 4)  # rate 3 -> 0.75
        tracker.note_divergence(1.0)
        assert tracker.fingerprint().divergence_norm == pytest.approx(0.5)

    def test_snapshot_shape(self):
        tracker = FingerprintTracker()
        tracker.note_query("view", ("view", "a"))
        snap = tracker.snapshot()
        assert set(snap) == {
            "fingerprint",
            "queries",
            "ingest_batches",
            "tracked_elements",
            "evicted_elements",
            "decay",
            "hot_top",
        }
        assert snap["queries"] == 1
        assert snap["tracked_elements"] == 1


class TestTraceFingerprint:
    def test_deterministic_and_normalized(self):
        trace = generate_soak_trace(TINY)
        fp = fingerprint_of_trace(trace)
        assert fp == fingerprint_of_trace(generate_soak_trace(TINY))
        assert fp.view_frac + fp.rollup_frac + fp.range_frac == pytest.approx(
            1.0
        )
        assert 0.0 < fp.hot_share <= 1.0
        assert 0.0 <= fp.ingest_norm < 1.0

    def test_distinct_mixes_are_far_apart(self):
        view_heavy = [
            {"op": "query_batch", "requests": [["d0"]] * 10},
        ]
        range_heavy = [
            {"op": "range", "ranges": [[0, 1]]} for _ in range(10)
        ]
        distance = fingerprint_of_trace(view_heavy).distance(
            fingerprint_of_trace(range_heavy)
        )
        assert distance > 1.0

    def test_empty_trace(self):
        assert fingerprint_of_trace([]) == WorkloadFingerprint()


class TestProfileLibrary:
    def test_nearest_and_round_trip(self, tmp_path):
        library = ProfileLibrary()
        assert library.nearest(WorkloadFingerprint()) is None
        a = WorkloadFingerprint(view_frac=1.0)
        b = WorkloadFingerprint(range_frac=1.0, hot_share=1.0)
        library.add(a, {"max_workers": 2}, label="view-heavy")
        library.add(b, {"max_workers": 8}, label="range-heavy")
        entry, distance = library.nearest(
            WorkloadFingerprint(view_frac=0.9, rollup_frac=0.1)
        )
        assert entry["label"] == "view-heavy"
        assert distance < 0.5
        path = library.save(tmp_path / "profiles.json")
        reloaded = ProfileLibrary.load(path)
        assert reloaded.to_dict() == library.to_dict()
        assert reloaded.nearest(b)[0]["tuning"] == {"max_workers": 8}

    def test_default_labels(self):
        library = ProfileLibrary()
        entry = library.add(WorkloadFingerprint(), {})
        assert entry["label"] == "profile-0"


class TestSiteProfiler:
    def test_sites_accumulate_past_tracer_ring(self):
        tracer = Tracer(max_spans=4)  # tiny ring: spans evict fast
        profiler = SiteProfiler(tracer)
        with tracer.activate():
            for _ in range(50):
                with tracer.span("materialize.assemble"):
                    pass
        snap = profiler.snapshot()
        site = snap["materialize.assemble"]
        assert site["count"] == 50  # profiler never forgot evicted spans
        assert site["p50_ms"] >= 0.0
        assert site["p95_ms"] >= site["p50_ms"]
        assert site["max_ms"] >= site["p95_ms"]
        profiler.close()

    def test_site_table_bounded(self):
        tracer = Tracer()
        profiler = SiteProfiler(tracer, max_sites=2)
        with tracer.activate():
            for name in ("a", "b", "c", "d"):
                with tracer.span(name):
                    pass
        snap = profiler.snapshot()
        assert snap["_overflow_sites"] == 2
        assert set(snap) == {"a", "b", "_overflow_sites"}
        profiler.close()

    def test_close_detaches(self):
        tracer = Tracer()
        profiler = SiteProfiler(tracer)
        profiler.close()
        with tracer.activate():
            with tracer.span("late"):
                pass
        assert profiler.snapshot() == {}


class TestRoundTrip:
    """The acceptance property: tune-time fingerprint keys, serve-time
    recognition."""

    def test_server_replaying_trace_recognizes_its_profile(self, tmp_path):
        trace = generate_soak_trace(TINY)
        tuned = {"max_workers": 2, "cache_entries": 64}
        library = ProfileLibrary()
        library.add(
            fingerprint_of_trace(trace), tuned, label="tiny-soak"
        )
        # A decoy regime far from the soak mix: pure range scanning.
        library.add(
            WorkloadFingerprint(range_frac=1.0, hot_share=1.0),
            {"max_workers": 16},
            label="range-heavy-decoy",
        )
        path = library.save(tmp_path / "profiles.json")

        report = run_soak(
            TINY, trace=trace, server_kwargs={"profile_library": str(path)}
        )
        section = report["fingerprint"]
        assert section is not None
        nearest = section["nearest_profile"]
        assert nearest["label"] == "tiny-soak"
        assert nearest["tuning"] == tuned
        # The live decayed fingerprint lands near the analytic one.
        live = WorkloadFingerprint.from_dict(section["fingerprint"])
        assert live.distance(fingerprint_of_trace(trace)) < nearest[
            "distance"
        ] + live.distance(
            WorkloadFingerprint(range_frac=1.0, hot_share=1.0)
        )
        assert nearest["distance"] < 0.6

    def test_health_without_library_has_no_nearest(self):
        report = run_soak(TINY)
        section = report["fingerprint"]
        assert section is not None
        assert "nearest_profile" not in section
