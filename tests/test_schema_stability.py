"""Schema snapshots for the externally-consumed telemetry surfaces.

Dashboards, Perfetto, scrapers, and bundle tooling parse these formats
outside this repo, so their key sets are contracts: a rename here is a
breaking change and must show up as a deliberate golden-file /
snapshot-test edit, never as an incidental refactor.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.cube.datacube import DataCube
from repro.cube.dimensions import Dimension
from repro.obs import MetricsRegistry
from repro.obs.export import prometheus_text, render_chrome_trace
from repro.obs.flight import (
    BUNDLE_REQUIRED_KEYS,
    MANIFEST_REQUIRED_KEYS,
    validate_bundle,
)
from repro.obs.reporting import stats_payload
from repro.server import OLAPServer

GOLDEN = Path(__file__).parent / "golden"


def make_server(**kwargs) -> OLAPServer:
    rng = np.random.default_rng(11)
    sizes = (8, 8)
    values = rng.integers(0, 100, size=sizes).astype(np.float64)
    dims = [Dimension(f"d{i}", list(range(n))) for i, n in enumerate(sizes)]
    return OLAPServer(DataCube(values, dims, measure="amount"), **kwargs)


def serve_some(server: OLAPServer) -> None:
    server.view(["d0"])
    server.rollup({"d0": 1, "d1": 1})
    server.range_sum(((0, 4), (0, 4)))


class TestPrometheusGolden:
    def test_exposition_matches_golden(self):
        # Deterministic registry -> byte-identical exposition, including
        # the histogram _bucket/_sum/_count family and label escaping.
        registry = MetricsRegistry()
        counter = registry.counter("queries_total", "queries served, by kind")
        counter.inc(kind="view")
        counter.inc(kind="view")
        counter.inc(kind="rollup")
        registry.gauge("inflight", "queries currently admitted").set(3)
        histogram = registry.histogram(
            "latency_ms", "serve latency", buckets=(1.0, 5.0, 25.0)
        )
        for value in (0.5, 2.0, 30.0):
            histogram.observe(value, kind="view")
        expected = (GOLDEN / "prometheus_exposition.txt").read_text()
        assert prometheus_text(registry) == expected


class TestStatsPayload:
    def test_top_level_keys(self):
        server = make_server()
        serve_some(server)
        payload = stats_payload(
            server.metrics,
            server.tracer,
            health=server.health(),
            events=server.obs.events,
        )
        assert set(payload) == {
            "metrics",
            "spans",
            "span_summary",
            "tracer",
            "events",
            "health",
        }
        assert set(payload["tracer"]) == {
            "finished_spans",
            "dropped_spans",
            "max_spans",
            "traces",
        }
        server.close()

    def test_health_slo_keys_are_stable(self):
        server = make_server()
        serve_some(server)
        slo = server.health()["slo"]
        # The flat scalar keys dashboards alert on.
        for key in (
            "timeout_rate",
            "rejection_rate",
            "retry_rate",
            "degraded_rate",
            "tracer_dropped_spans",
            "events_dropped",
            "telemetry_loss",
            "latency_ms",
        ):
            assert key in slo, key
        assert set(slo["telemetry_loss"]) >= {
            "tracer_dropped_spans",
            "events_dropped",
            "metrics_dropped_series",
        }
        server.close()

    def test_new_observability_sections_present(self):
        server = make_server()
        serve_some(server)
        health = server.health()
        assert health["alerts"]["firing_now"] == []
        assert set(health["fingerprint"]["fingerprint"]) == {
            "view_frac",
            "rollup_frac",
            "range_frac",
            "hot_share",
            "ingest_norm",
            "divergence_norm",
        }
        assert health["flight"]["traces_seen"] > 0
        server.close()


class TestChromeTraceSchema:
    def test_event_keys(self):
        server = make_server()
        serve_some(server)
        doc = json.loads(render_chrome_trace(server.tracer))
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        phases = {event["ph"] for event in doc["traceEvents"]}
        assert "X" in phases and "M" in phases
        for event in doc["traceEvents"]:
            if event["ph"] == "X":
                assert set(event) == {
                    "ph",
                    "name",
                    "cat",
                    "pid",
                    "tid",
                    "ts",
                    "dur",
                    "args",
                }
                assert {"trace_id", "span_id", "parent_id"} <= set(
                    event["args"]
                )
            elif event["ph"] == "M":
                assert event["name"] == "thread_name"
                assert set(event) == {"ph", "name", "pid", "tid", "args"}
        server.close()


class TestBundleSchema:
    def test_dump_diagnostics_manifest_stability(self, tmp_path):
        server = make_server(diagnostics_dir=tmp_path)
        serve_some(server)
        path = server.dump_diagnostics(trigger={"kind": "test"})
        bundle = json.loads(Path(path).read_text())
        assert validate_bundle(bundle) == []
        # The full key set is the contract — additions require touching
        # BUNDLE_REQUIRED_KEYS (and docs/observability.md) on purpose.
        assert set(bundle) == set(BUNDLE_REQUIRED_KEYS)
        manifest = bundle["manifest"]
        assert set(manifest) == set(MANIFEST_REQUIRED_KEYS)
        assert manifest["bundle_format"] == 1
        assert manifest["contents"] == sorted(bundle)
        server.close()

    def test_bundle_sections_match_documented_constants(self):
        assert BUNDLE_REQUIRED_KEYS == (
            "manifest",
            "trigger",
            "health",
            "tuning",
            "metrics",
            "events_tail",
            "telemetry_loss",
            "exemplar_traces",
            "flight",
            "alerts",
            "fingerprint",
            "profiler",
            "durability",
        )
        assert MANIFEST_REQUIRED_KEYS == (
            "bundle_format",
            "created_unix",
            "trigger",
            "contents",
        )
