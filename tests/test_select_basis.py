"""Tests for Algorithm 1 — optimal non-redundant basis selection (§5.2)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.costs import basis_population_cost, element_population_cost
from repro.core.element import CubeShape, ElementId
from repro.core.frequency import is_non_redundant_basis
from repro.core.population import QueryPopulation
from repro.core.select_basis import select_minimum_cost_basis
from repro.core.select_fast import select_minimum_cost_basis_fast


def _all_bases(element: ElementId):
    """Enumerate every complete non-redundant basis below ``element``.

    Mirrors Procedure 2: stop, or split along one dimension and combine the
    children's bases.  Exponential — tiny shapes only.
    """
    yield [element]
    for dim in element.splittable_dims():
        p_child, r_child = element.children(dim)
        for p_basis in _all_bases(p_child):
            for r_basis in _all_bases(r_child):
                yield p_basis + r_basis


class TestOptimality:
    """Algorithm 1 matches brute force over every basis."""

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_matches_brute_force_2x2(self, seed):
        shape = CubeShape((2, 2))
        rng = np.random.default_rng(seed)
        population = QueryPopulation.random_over_views(shape, rng)
        selection = select_minimum_cost_basis(shape, population)
        brute = min(
            basis_population_cost(basis, population)
            for basis in _all_bases(shape.root())
        )
        assert selection.cost == pytest.approx(brute)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_matches_brute_force_4x2(self, seed):
        shape = CubeShape((4, 2))
        rng = np.random.default_rng(seed)
        population = QueryPopulation.random_over_views(shape, rng)
        selection = select_minimum_cost_basis(shape, population)
        brute = min(
            basis_population_cost(basis, population)
            for basis in _all_bases(shape.root())
        )
        assert selection.cost == pytest.approx(brute)

    def test_never_worse_than_cube_or_wavelet(self, shape_4x4, rng):
        from repro.core.bases import wavelet_basis

        population = QueryPopulation.random_over_views(shape_4x4, rng)
        selection = select_minimum_cost_basis(shape_4x4, population)
        assert selection.cost <= element_population_cost(
            shape_4x4.root(), population
        ) + 1e-9
        assert selection.cost <= basis_population_cost(
            wavelet_basis(shape_4x4), population
        ) + 1e-9


class TestBasisValidity:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_selected_set_is_non_redundant_basis(self, seed):
        shape = CubeShape((4, 4))
        rng = np.random.default_rng(seed)
        population = QueryPopulation.random_over_views(shape, rng)
        selection = select_minimum_cost_basis(shape, population)
        assert is_non_redundant_basis(selection.elements)
        assert selection.storage == shape.volume  # non-expansive

    def test_cost_equals_reported(self, shape_4x4, rng):
        population = QueryPopulation.random_over_views(shape_4x4, rng)
        selection = select_minimum_cost_basis(shape_4x4, population)
        assert basis_population_cost(
            selection.elements, population
        ) == pytest.approx(selection.cost)

    def test_hot_view_gets_materialized(self, shape_4x4):
        """A single hot query makes its own element the whole cheap path."""
        view = shape_4x4.aggregated_view([0, 1])
        population = QueryPopulation.from_pairs([(view, 1.0)])
        selection = select_minimum_cost_basis(shape_4x4, population)
        assert view in selection.elements
        # Supporting only that query costs nothing.
        assert selection.cost == 0.0

    def test_population_shape_mismatch(self, shape_4x4):
        other = CubeShape((8, 8))
        population = QueryPopulation.uniform_over_views(other)
        with pytest.raises(ValueError, match="different cube shape"):
            select_minimum_cost_basis(shape_4x4, population)

    def test_max_elements_guard(self, shape_4x4, rng):
        population = QueryPopulation.random_over_views(shape_4x4, rng)
        with pytest.raises(RuntimeError, match="max_elements"):
            select_minimum_cost_basis(shape_4x4, population, max_elements=1)


class TestPedagogicalExample:
    def test_optimum_is_three(self):
        """Section 7.1: the minimum total processing cost is 3."""
        from repro.experiments.table2 import (
            pedagogical_population,
        )

        shape = CubeShape((2, 2))
        population = pedagogical_population()
        selection = select_minimum_cost_basis(shape, population)
        # Table 2 reports unweighted sums over the two queries.
        assert selection.cost * 2 == pytest.approx(3.0)

    def test_selects_one_of_the_two_optima(self):
        from repro.experiments.table2 import (
            pedagogical_elements,
            pedagogical_population,
        )

        shape = CubeShape((2, 2))
        elements = pedagogical_elements()
        selection = select_minimum_cost_basis(shape, pedagogical_population())
        chosen = set(selection.elements)
        optima = [
            {elements["V3"], elements["V6"], elements["V7"]},
            {elements["V1"], elements["V5"], elements["V6"]},
        ]
        assert chosen in optima


class TestFastEquivalence:
    """The reduced-state DP is exact for aggregated-view populations."""

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_fast_matches_general_4x4(self, seed):
        shape = CubeShape((4, 4))
        rng = np.random.default_rng(seed)
        population = QueryPopulation.random_over_views(shape, rng)
        general = select_minimum_cost_basis(shape, population)
        fast = select_minimum_cost_basis_fast(shape, population)
        assert fast.cost == pytest.approx(general.cost)

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_fast_matches_general_3d(self, seed):
        shape = CubeShape((8, 4, 2))
        rng = np.random.default_rng(seed)
        population = QueryPopulation.random_over_views(shape, rng)
        general = select_minimum_cost_basis(shape, population)
        fast = select_minimum_cost_basis_fast(shape, population)
        assert fast.cost == pytest.approx(general.cost)

    def test_fast_extraction_is_valid_basis(self, shape_4x4, rng):
        population = QueryPopulation.random_over_views(shape_4x4, rng)
        fast = select_minimum_cost_basis_fast(shape_4x4, population)
        elements = list(fast.extract_elements())
        assert is_non_redundant_basis(elements)
        assert len(elements) == fast.num_elements
        assert sum(e.volume for e in elements) == fast.storage
        assert fast.storage == shape_4x4.volume
        assert basis_population_cost(elements, population) == pytest.approx(
            fast.cost
        )

    def test_fast_rejects_general_population(self, shape_4x4):
        element = shape_4x4.root().partial_child(0)
        population = QueryPopulation.from_pairs([(element, 1.0)])
        with pytest.raises(ValueError, match="aggregated-view"):
            select_minimum_cost_basis_fast(shape_4x4, population)

    def test_fast_extraction_limit(self, shape_4x4, rng):
        population = QueryPopulation.random_over_views(shape_4x4, rng)
        fast = select_minimum_cost_basis_fast(shape_4x4, population)
        if fast.num_elements > 1:
            with pytest.raises(RuntimeError, match="limit"):
                list(fast.extract_elements(limit=1))

    def test_experiment1_scale(self):
        """The paper's 923,521-node graph solves in well under a second."""
        shape = CubeShape((16,) * 4)
        population = QueryPopulation.random_over_views(
            shape, np.random.default_rng(0)
        )
        result = select_minimum_cost_basis_fast(shape, population)
        assert result.storage == shape.volume
        assert 0 < result.cost < element_population_cost(
            shape.root(), population
        )
