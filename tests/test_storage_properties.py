"""Property-based tests across the storage substrates.

Round-trip and agreement laws between the four cube representations:
dense arrays, COO sparse, chunked, and wavelet-packet compressed.  Whatever
the representation, totals, views, and reconstructions must agree exactly.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compress import CompressedCube
from repro.core.element import CubeShape
from repro.cube import ChunkedCube, SparseCube


def _random_cube(seed: int, density: float) -> tuple[CubeShape, np.ndarray]:
    rng = np.random.default_rng(seed)
    shape = CubeShape((8, 4))
    mask = rng.random(shape.sizes) < density
    values = np.where(mask, rng.integers(-9, 9, shape.sizes), 0)
    return shape, values.astype(np.float64)


class TestRepresentationAgreement:
    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        density=st.sampled_from([0.1, 0.5, 0.9]),
    )
    def test_round_trips(self, seed, density):
        shape, dense = _random_cube(seed, density)
        sparse = SparseCube.from_dense(dense, shape)
        chunked = ChunkedCube.from_dense(dense, (4, 2), shape)
        compressed = CompressedCube.compress(dense, shape)
        np.testing.assert_array_equal(sparse.densify(), dense)
        np.testing.assert_array_equal(chunked.densify(), dense)
        np.testing.assert_allclose(compressed.reconstruct(), dense)

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        density=st.sampled_from([0.1, 0.6]),
    )
    def test_totals_agree(self, seed, density):
        shape, dense = _random_cube(seed, density)
        sparse = SparseCube.from_dense(dense, shape)
        chunked = ChunkedCube.from_dense(dense, (2, 2), shape)
        assert sparse.total() == pytest.approx(dense.sum())
        assert chunked.total() == pytest.approx(dense.sum())

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        axes=st.sampled_from([(0,), (1,), (0, 1)]),
    )
    def test_aggregations_agree(self, seed, axes):
        shape, dense = _random_cube(seed, 0.4)
        sparse = SparseCube.from_dense(dense, shape)
        chunked = ChunkedCube.from_dense(dense, (4, 4), shape)
        expected = dense.sum(axis=axes, keepdims=True)
        np.testing.assert_allclose(sparse.total_aggregate(axes), expected)
        np.testing.assert_allclose(chunked.total_aggregate(axes), expected)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_nnz_accounting(self, seed):
        shape, dense = _random_cube(seed, 0.3)
        sparse = SparseCube.from_dense(dense, shape)
        assert sparse.nnz == int(np.count_nonzero(dense))
        chunked = ChunkedCube.from_dense(dense, (2, 2), shape)
        assert chunked.stored_cells >= sparse.nnz  # chunk granularity

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_compression_never_lossy_at_zero_threshold(self, seed):
        shape, dense = _random_cube(seed, 0.7)
        compressed = CompressedCube.compress(dense, shape, threshold=0.0)
        np.testing.assert_allclose(compressed.reconstruct(), dense)
        # And never stores more coefficients than the cube has cells.
        assert compressed.stored_coefficients <= shape.volume
