"""Tests for the .npz persistence layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bases import wavelet_basis
from repro.core.materialize import MaterializedSet
from repro.io import (
    load_cube,
    load_materialized_set,
    save_cube,
    save_materialized_set,
)
from repro.workloads import SalesConfig, sales_cube


@pytest.fixture
def cube():
    return sales_cube(SalesConfig(num_transactions=200, seed=47))


class TestCubeRoundTrip:
    def test_values_and_metadata_survive(self, cube, tmp_path):
        path = tmp_path / "cube.npz"
        save_cube(cube, path)
        loaded = load_cube(path)
        np.testing.assert_array_equal(loaded.values, cube.values)
        assert loaded.measure == cube.measure
        assert loaded.dimensions.names == cube.dimensions.names
        for original, restored in zip(cube.dimensions, loaded.dimensions):
            assert restored.values == original.values
            assert restored.size == original.size

    def test_encodings_survive(self, cube, tmp_path):
        path = tmp_path / "cube.npz"
        save_cube(cube, path)
        loaded = load_cube(path)
        product = cube.dimensions["product"].values[2]
        assert loaded.dimensions["product"].encode(product) == cube.dimensions[
            "product"
        ].encode(product)

    def test_bad_format_rejected(self, cube, tmp_path):
        import json

        path = tmp_path / "cube.npz"
        header = {"format": 999}
        np.savez(
            path,
            header=np.frombuffer(
                json.dumps(header).encode("utf-8"), dtype=np.uint8
            ),
            values=cube.values,
        )
        with pytest.raises(ValueError, match="unsupported cube format"):
            load_cube(path)


class TestMaterializedSetRoundTrip:
    def test_elements_and_arrays_survive(self, cube, tmp_path):
        shape = cube.shape_id
        ms = MaterializedSet.from_cube(cube.values, wavelet_basis(shape))
        path = tmp_path / "set.npz"
        save_materialized_set(ms, path)
        loaded = load_materialized_set(path)
        assert set(loaded.elements) == set(ms.elements)
        for element in ms.elements:
            np.testing.assert_array_equal(
                loaded.array(element), ms.array(element)
            )

    def test_loaded_set_still_assembles(self, cube, tmp_path):
        shape = cube.shape_id
        ms = MaterializedSet.from_cube(cube.values, wavelet_basis(shape))
        path = tmp_path / "set.npz"
        save_materialized_set(ms, path)
        loaded = load_materialized_set(path)
        np.testing.assert_allclose(
            loaded.reconstruct_cube(), cube.values, atol=1e-9
        )

    def test_bad_format_rejected(self, tmp_path):
        import json

        path = tmp_path / "set.npz"
        np.savez(
            path,
            header=np.frombuffer(
                json.dumps({"format": 999}).encode("utf-8"), dtype=np.uint8
            ),
        )
        with pytest.raises(ValueError, match="unsupported element-set"):
            load_materialized_set(path)


class TestPathNormalization:
    def test_save_bare_load_bare(self, cube, tmp_path):
        # np.savez_compressed("foo") writes foo.npz; loading via the same
        # bare path must work (the historical failure mode).
        save_cube(cube, tmp_path / "bare")
        loaded = load_cube(tmp_path / "bare")
        np.testing.assert_array_equal(loaded.values, cube.values)

    def test_save_bare_load_suffixed_and_vice_versa(self, cube, tmp_path):
        save_cube(cube, tmp_path / "one")
        np.testing.assert_array_equal(
            load_cube(tmp_path / "one.npz").values, cube.values
        )
        save_cube(cube, tmp_path / "two.npz")
        np.testing.assert_array_equal(
            load_cube(tmp_path / "two").values, cube.values
        )
        assert not (tmp_path / "two.npz.npz").exists()

    def test_set_paths_normalize_too(self, cube, tmp_path):
        ms = MaterializedSet.from_cube(
            cube.values, wavelet_basis(cube.shape_id)
        )
        save_materialized_set(ms, tmp_path / "bare_set")
        loaded = load_materialized_set(tmp_path / "bare_set")
        assert set(loaded.elements) == set(ms.elements)

    def test_saves_are_atomic_no_temp_residue(self, cube, tmp_path):
        save_cube(cube, tmp_path / "cube.npz")
        leftovers = [p.name for p in tmp_path.iterdir() if "tmp" in p.name]
        assert leftovers == []
        assert (tmp_path / "cube.npz").exists()

    def test_save_overwrites_in_place(self, cube, tmp_path):
        path = tmp_path / "cube.npz"
        save_cube(cube, path)
        save_cube(cube, path)  # second save replaces, never corrupts
        np.testing.assert_array_equal(load_cube(path).values, cube.values)


class TestTruncatedArchives:
    def test_missing_header_raises_integrity_error(self, tmp_path):
        from repro.errors import IntegrityError

        path = tmp_path / "broken.npz"
        np.savez(path, values=np.zeros((2, 2)))
        with pytest.raises(IntegrityError, match="header"):
            load_cube(path)
        with pytest.raises(IntegrityError, match="header"):
            load_materialized_set(path)

    def test_byte_truncated_archive_raises_integrity_error(self, cube, tmp_path):
        # Cutting the file in half destroys the zip central directory,
        # the most common real-world truncation; numpy's BadZipFile must
        # surface as IntegrityError, not leak through raw.
        from repro.errors import IntegrityError

        whole = tmp_path / "cube.npz"
        save_cube(cube, whole)
        data = whole.read_bytes()
        half = tmp_path / "half.npz"
        half.write_bytes(data[: len(data) // 2])
        with pytest.raises(IntegrityError, match="readable"):
            load_cube(half)

    def test_missing_file_still_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_cube(tmp_path / "nope.npz")

    def test_missing_values_raises_integrity_error(self, tmp_path):
        import json

        from repro.errors import IntegrityError

        path = tmp_path / "noval.npz"
        np.savez(
            path,
            header=np.frombuffer(
                json.dumps({"format": 1}).encode("utf-8"), dtype=np.uint8
            ),
        )
        with pytest.raises(IntegrityError, match="values"):
            load_cube(path)

    def test_missing_element_array_raises_integrity_error(self, tmp_path):
        import json

        from repro.errors import IntegrityError

        header = {
            "format": 1,
            "sizes": [2, 2],
            "elements": [[[0, 0], [0, 0]], [[1, 0], [0, 0]]],
        }
        path = tmp_path / "short.npz"
        np.savez(
            path,
            header=np.frombuffer(
                json.dumps(header).encode("utf-8"), dtype=np.uint8
            ),
            element_0=np.zeros((2, 2)),
            # element_1 deliberately absent: a truncated archive.
        )
        with pytest.raises(IntegrityError, match="element_1"):
            load_materialized_set(path)

    def test_unreadable_header_raises_integrity_error(self, tmp_path):
        from repro.errors import IntegrityError

        path = tmp_path / "garbage.npz"
        np.savez(path, header=np.frombuffer(b"\xff\xfe{", dtype=np.uint8))
        with pytest.raises(IntegrityError, match="header"):
            load_cube(path)

    def test_checksum_mismatch_raises_integrity_error(self, cube, tmp_path):
        import json

        from repro.errors import IntegrityError

        header = {
            "format": 1,
            "measure": "m",
            "dimensions": [],
            "checksum": 12345,  # wrong on purpose
        }
        path = tmp_path / "tampered.npz"
        np.savez(
            path,
            header=np.frombuffer(
                json.dumps(header).encode("utf-8"), dtype=np.uint8
            ),
            values=np.ones((2, 2)),
        )
        with pytest.raises(IntegrityError, match="verification"):
            load_cube(path)

    def test_archives_without_checksums_still_load(self, tmp_path):
        import json

        # Format 1 archives written before checksums existed lack the
        # optional field; they must load (verification is just skipped).
        header = {
            "format": 1,
            "measure": "m",
            "dimensions": [
                {"name": "d0", "values": [0, 1], "size": 2},
                {"name": "d1", "values": [0, 1], "size": 2},
            ],
        }
        path = tmp_path / "legacy.npz"
        np.savez(
            path,
            header=np.frombuffer(
                json.dumps(header).encode("utf-8"), dtype=np.uint8
            ),
            values=np.ones((2, 2)),
        )
        loaded = load_cube(path)
        np.testing.assert_array_equal(loaded.values, np.ones((2, 2)))


class TestAtomicSaveDebris:
    def test_failed_save_leaves_no_tmp_debris(self, tmp_path, cube):
        # A save that dies mid-write must unlink its own temp file and
        # leave any previous archive untouched.
        target = tmp_path / "cube.npz"
        save_cube(cube, target)
        before = target.read_bytes()

        def boom(fh, **arrays):
            fh.write(b"partial bytes")
            raise OSError("disk full")

        import repro.io as io_module

        original = io_module.np.savez_compressed
        io_module.np.savez_compressed = boom
        try:
            with pytest.raises(OSError, match="disk full"):
                save_cube(cube, target)
        finally:
            io_module.np.savez_compressed = original

        assert list(tmp_path.glob("*.tmp")) == []
        assert target.read_bytes() == before
        np.testing.assert_array_equal(load_cube(target).values, cube.values)

    def test_concurrent_saves_use_distinct_temp_names(self, tmp_path, cube):
        # Concurrent writers of one destination must never share a temp
        # path: each save rename-completes with a full archive and sweeps
        # only its own debris.
        import threading

        target = tmp_path / "cube.npz"
        errors = []

        def save():
            try:
                for _ in range(3):
                    save_cube(cube, target)
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [threading.Thread(target=save) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert errors == []
        assert list(tmp_path.glob("*.tmp")) == []
        np.testing.assert_array_equal(load_cube(target).values, cube.values)
