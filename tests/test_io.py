"""Tests for the .npz persistence layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bases import wavelet_basis
from repro.core.materialize import MaterializedSet
from repro.io import (
    load_cube,
    load_materialized_set,
    save_cube,
    save_materialized_set,
)
from repro.workloads import SalesConfig, sales_cube


@pytest.fixture
def cube():
    return sales_cube(SalesConfig(num_transactions=200, seed=47))


class TestCubeRoundTrip:
    def test_values_and_metadata_survive(self, cube, tmp_path):
        path = tmp_path / "cube.npz"
        save_cube(cube, path)
        loaded = load_cube(path)
        np.testing.assert_array_equal(loaded.values, cube.values)
        assert loaded.measure == cube.measure
        assert loaded.dimensions.names == cube.dimensions.names
        for original, restored in zip(cube.dimensions, loaded.dimensions):
            assert restored.values == original.values
            assert restored.size == original.size

    def test_encodings_survive(self, cube, tmp_path):
        path = tmp_path / "cube.npz"
        save_cube(cube, path)
        loaded = load_cube(path)
        product = cube.dimensions["product"].values[2]
        assert loaded.dimensions["product"].encode(product) == cube.dimensions[
            "product"
        ].encode(product)

    def test_bad_format_rejected(self, cube, tmp_path):
        import json

        path = tmp_path / "cube.npz"
        header = {"format": 999}
        np.savez(
            path,
            header=np.frombuffer(
                json.dumps(header).encode("utf-8"), dtype=np.uint8
            ),
            values=cube.values,
        )
        with pytest.raises(ValueError, match="unsupported cube format"):
            load_cube(path)


class TestMaterializedSetRoundTrip:
    def test_elements_and_arrays_survive(self, cube, tmp_path):
        shape = cube.shape_id
        ms = MaterializedSet.from_cube(cube.values, wavelet_basis(shape))
        path = tmp_path / "set.npz"
        save_materialized_set(ms, path)
        loaded = load_materialized_set(path)
        assert set(loaded.elements) == set(ms.elements)
        for element in ms.elements:
            np.testing.assert_array_equal(
                loaded.array(element), ms.array(element)
            )

    def test_loaded_set_still_assembles(self, cube, tmp_path):
        shape = cube.shape_id
        ms = MaterializedSet.from_cube(cube.values, wavelet_basis(shape))
        path = tmp_path / "set.npz"
        save_materialized_set(ms, path)
        loaded = load_materialized_set(path)
        np.testing.assert_allclose(
            loaded.reconstruct_cube(), cube.values, atol=1e-9
        )

    def test_bad_format_rejected(self, tmp_path):
        import json

        path = tmp_path / "set.npz"
        np.savez(
            path,
            header=np.frombuffer(
                json.dumps({"format": 999}).encode("utf-8"), dtype=np.uint8
            ),
        )
        with pytest.raises(ValueError, match="unsupported element-set"):
            load_materialized_set(path)
