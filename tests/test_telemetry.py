"""End-to-end telemetry: cross-executor traces, profiles, exporters, SLOs.

The tentpole guarantees of the telemetry layer, tested at the server
boundary:

- one ``query_batch`` yields exactly one connected trace even when its DAG
  nodes run on pool worker threads or in process-pool workers;
- measured operation counts in the profile equal the planned cost exactly
  on the unfaulted path;
- seeded chaos (retries, degradation, fault injections) lands as events on
  the query span it happened inside;
- the exporters (Chrome trace JSON, Prometheus text, the stdlib HTTP
  endpoint, JSONL events) produce well-formed output from live servers.
"""

import json
import os
import threading
from urllib.request import urlopen

import numpy as np
import pytest

from repro.core.adaptive import CostModelMonitor, DynamicViewAssembler
from repro.core.element import CubeShape
from repro.cube.datacube import DataCube
from repro.cube.dimensions import Dimension
from repro.obs import (
    EventLog,
    MetricsRegistry,
    Observability,
    Tracer,
    log_event,
    span,
)
from repro.obs.export import chrome_trace, prometheus_text, render_chrome_trace
from repro.obs.profile import query_profile, render_profile
from repro.resilience import FaultInjector, FaultRule
from repro.server import OLAPServer

BATCH = [["d0"], ["d1"], ["d2"], ["d0", "d1"], ["d0", "d2"], ["d1", "d2"]]


def _make_server(seed=11, sizes=(8, 8, 8), **kwargs):
    rng = np.random.default_rng(seed)
    values = rng.integers(0, 100, size=sizes).astype(np.float64)
    dims = [Dimension(f"d{i}", list(range(n))) for i, n in enumerate(sizes)]
    return OLAPServer(DataCube(values, dims, measure="amount"), **kwargs)


def _assert_connected(spans):
    """Every span shares the root's trace id and parents resolve."""
    trace_ids = {s.trace_id for s in spans}
    assert len(trace_ids) == 1
    span_ids = {s.span_id for s in spans}
    roots = [s for s in spans if s.parent_id is None]
    assert len(roots) == 1
    for s in spans:
        assert s.parent_id is None or s.parent_id in span_ids


class TestPooledTrace:
    def test_pooled_batch_is_one_connected_trace(self):
        server = _make_server()
        results = server.query_batch(
            BATCH, max_workers=4, dispatch_threshold=0
        )
        spans = server.tracer.trace()
        _assert_connected(spans)
        (root,) = [s for s in spans if s.parent_id is None]
        assert root.name == "server.query_batch"
        # The batch really crossed threads: exec.node spans ran on pool
        # workers, the root on the scheduler thread, all in one trace.
        nodes = [s for s in spans if s.name == "exec.node"]
        assert nodes
        worker_threads = {s.thread_id for s in nodes} - {root.thread_id}
        assert worker_threads
        # And the answers match serial serving bit for bit.
        plain = _make_server()
        for dims, result in zip(BATCH, results):
            assert result.tobytes() == plain.view(dims).tobytes()

    def test_every_view_call_is_its_own_trace(self):
        server = _make_server()
        server.view(["d0"])
        server.view(["d1"])
        assert len(server.tracer.trace_ids()) == 2

    def test_pooled_profile_measured_equals_planned(self):
        server = _make_server()
        server.query_batch(BATCH, max_workers=4, dispatch_threshold=0)
        profile = query_profile(server.tracer)
        totals = profile["totals"]
        assert totals["nodes"] > 0
        assert totals["measured"] == totals["planned"]
        assert totals["divergence"] == 1.0
        for node in profile["nodes"]:
            assert node["divergence"] == 1.0
        # render_profile produces the human table without blowing up.
        assert "meas/plan" in render_profile(profile)


class TestProcessBackendTrace:
    def test_process_batch_is_one_trace_with_remote_spans(self):
        server = _make_server(sizes=(16, 16, 8))
        results = server.query_batch(
            BATCH,
            max_workers=2,
            backend="process",
            dispatch_threshold=0,
            process_threshold=1 << 10,
        )
        spans = server.tracer.trace()
        _assert_connected(spans)
        remote = [
            s for s in spans if s.attributes.get("remote")
        ]
        assert remote, "no DAG node crossed the process boundary"
        assert {s.process_id for s in remote} - {os.getpid()}
        # Remote spans parent to the executor span of this very trace.
        (root,) = [s for s in spans if s.parent_id is None]
        for s in remote:
            assert s.trace_id == root.trace_id
            assert s.parent_id in {x.span_id for x in spans}
        # Exact accounting survives the shared-memory round-trip.
        profile = query_profile(server.tracer)
        assert profile["totals"]["measured"] == profile["totals"]["planned"]
        plain = _make_server(sizes=(16, 16, 8))
        for dims, result in zip(BATCH, results):
            assert result.tobytes() == plain.view(dims).tobytes()


class TestChaosEventsOnSpans:
    def test_retry_events_attach_to_the_query_span(self):
        server = _make_server(max_retries=2, retry_backoff_ms=0.0)
        injector = FaultInjector(
            [
                FaultRule(
                    site="materialize.assemble",
                    kind="error",
                    max_fires=1,
                )
            ],
            seed=3,
        )
        with injector.activate():
            server.view(["d0"])
        (query_span,) = server.tracer.spans("server.query")
        retry = next(
            e for e in query_span.events if e["name"] == "retry"
        )
        assert retry["attempt"] == 1
        assert retry["exhausted"] is False
        # The injection itself annotated the assembly span it fired
        # inside — a child of this very query in the same trace.
        fault_spans = [
            s
            for s in server.tracer.trace(query_span.trace_id)
            if any(e["name"] == "fault_injected" for e in s.events)
        ]
        assert fault_spans
        assert all(s.name == "materialize.assemble" for s in fault_spans)

    def test_fallback_event_attaches_when_set_goes_incomplete(self):
        server = _make_server(degrade_to_base=True)
        expected = _make_server().view(["d0"])
        # Quarantine the only stored element: assembly must degrade to a
        # base-cube recompute, annotated on the query span.
        server.materialized.quarantine(server.shape.root(), reason="test")
        result = server.view(["d0"])
        assert np.array_equal(result, expected)
        (query_span,) = server.tracer.spans("server.query")
        fallback = next(
            e for e in query_span.events if e["name"] == "fallback"
        )
        assert fallback["target"] == "base_cube"
        # The same story lands in the event log for log shippers.
        assert server.obs.events.events("fallback")


class TestHistogramQuantiles:
    @staticmethod
    def _hist(buckets=None):
        return MetricsRegistry().histogram("h", "test", buckets=buckets)

    def test_quantiles_interpolate_within_buckets(self):
        hist = self._hist(buckets=(1.0, 10.0, 100.0))
        for value in [2.0] * 50 + [20.0] * 50:
            hist.observe(value)
        stats = hist.stats()
        assert stats["count"] == 100
        # p50 falls in the (1, 10] bucket, p95/p99 in (10, 100].
        assert 1.0 <= stats["p50"] <= 10.0
        assert 10.0 <= stats["p95"] <= 100.0
        assert 10.0 <= stats["p99"] <= 100.0
        assert stats["p50"] <= stats["p95"] <= stats["p99"]

    def test_quantiles_clamped_to_observed_range(self):
        hist = self._hist(buckets=(100.0,))
        hist.observe(5.0)
        hist.observe(7.0)
        stats = hist.stats()
        assert 5.0 <= stats["p50"] <= 7.0
        assert 5.0 <= stats["p99"] <= 7.0

    def test_empty_series_reports_zeros(self):
        hist = self._hist()
        assert hist.stats()["p99"] == 0.0
        assert hist.quantile(0.5) == 0.0

    def test_quantile_rejects_out_of_range(self):
        hist = self._hist()
        with pytest.raises(ValueError):
            hist.quantile(1.5)


class TestTracerDrops:
    def test_ring_overflow_counts_drops_and_metric(self):
        registry = MetricsRegistry()
        tracer = Tracer(max_spans=4)
        with registry.activate(), tracer.activate():
            for i in range(10):
                with span("work", index=i):
                    pass
        assert len(tracer.spans()) == 4
        assert tracer.dropped_spans == 6
        assert registry.counter("tracer_dropped_spans").total() == 6


class TestExporters:
    def _traced_server(self):
        server = _make_server()
        server.query_batch(BATCH, max_workers=2, dispatch_threshold=0)
        return server

    def test_chrome_trace_shape(self):
        server = self._traced_server()
        doc = chrome_trace(server.tracer)
        events = doc["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        metadata = [e for e in events if e["ph"] == "M"]
        assert complete and metadata
        for e in complete:
            assert e["ts"] >= 0 and e["dur"] >= 0
            assert {"pid", "tid", "name", "args"} <= set(e)
        # The rendered form is valid JSON and loads back identically.
        assert json.loads(render_chrome_trace(server.tracer)) == doc

    def test_chrome_trace_filters_by_trace_id(self):
        server = self._traced_server()
        server.view(["d0"])
        first_id = server.tracer.trace_ids()[0]
        doc = chrome_trace(server.tracer, first_id)
        names = {
            e["name"] for e in doc["traceEvents"] if e["ph"] == "X"
        }
        assert "server.query_batch" in names
        assert "server.query" not in names

    def test_prometheus_text_exposition(self):
        server = self._traced_server()
        text = prometheus_text(server.metrics)
        assert "# TYPE server_queries_total counter" in text
        assert "# TYPE server_latency_ms histogram" in text
        assert 'kind="view"' in text
        # Histograms expose cumulative buckets ending at +Inf plus
        # _sum/_count series.
        assert 'le="+Inf"' in text
        assert "_sum" in text and "_count" in text
        for line in text.splitlines():
            assert line.startswith("#") or " " in line

    def test_event_log_jsonl(self):
        log = EventLog(max_events=3)
        with log.activate():
            for i in range(5):
                log_event("tick", index=i)
        events = log.events()
        assert len(events) == 3
        assert log.dropped_events == 2
        assert [e["seq"] for e in events] == [3, 4, 5]
        for line in log.to_jsonl().splitlines():
            parsed = json.loads(line)
            assert parsed["kind"] == "tick"


class TestTelemetryEndpoint:
    def test_metrics_and_health_over_http(self):
        server = _make_server()
        server.view(["d0"])
        endpoint = server.serve_telemetry(port=0)
        try:
            with urlopen(f"{endpoint.url}/metrics", timeout=5) as resp:
                assert resp.status == 200
                body = resp.read().decode()
                assert "server_queries_total" in body
            with urlopen(f"{endpoint.url}/health", timeout=5) as resp:
                assert resp.status == 200
                health = json.loads(resp.read().decode())
                assert health["status"] == "ok"
                assert "slo" in health
        finally:
            endpoint.stop()

    def test_unknown_path_is_404(self):
        server = _make_server()
        endpoint = server.serve_telemetry(port=0)
        try:
            import urllib.error

            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urlopen(f"{endpoint.url}/nope", timeout=5)
            assert excinfo.value.code == 404
        finally:
            endpoint.stop()


class TestServerSLO:
    def test_health_reports_latency_quantiles_per_kind(self):
        server = _make_server()
        for _ in range(4):
            server.view(["d0"])
        server.rollup({"d1": 1})
        slo = server.health()["slo"]
        assert set(slo["latency_ms"]) == {"view", "rollup"}
        view_stats = slo["latency_ms"]["view"]
        assert view_stats["count"] == 4
        assert 0.0 <= view_stats["p50_ms"] <= view_stats["p95_ms"]
        assert view_stats["p99_ms"] <= view_stats["max_ms"] or (
            abs(view_stats["p99_ms"] - view_stats["max_ms"]) < 1e-6
        )
        assert slo["timeout_rate"] == 0.0
        assert slo["rejection_rate"] == 0.0
        assert slo["tracer_dropped_spans"] == 0
        assert slo["events_dropped"] == 0

    def test_retry_rate_counts_chaos(self):
        server = _make_server(max_retries=2, retry_backoff_ms=0.0)
        injector = FaultInjector(
            [
                FaultRule(
                    site="materialize.assemble", kind="error", max_fires=1
                )
            ],
            seed=3,
        )
        with injector.activate():
            server.view(["d0"])
        assert server.health()["slo"]["retry_rate"] > 0.0


class TestCostModelFeedback:
    def test_unfaulted_profiles_never_trigger(self):
        monitor = CostModelMonitor(tolerance=0.25)
        for _ in range(10):
            monitor.ingest(
                {"totals": {"nodes": 3, "planned": 100, "measured": 100}}
            )
        assert monitor.divergence == 1.0
        assert not monitor.should_reconfigure()

    def test_sustained_divergence_triggers(self):
        monitor = CostModelMonitor(tolerance=0.25, decay=0.5)
        for _ in range(10):
            monitor.ingest(
                {"totals": {"nodes": 3, "planned": 100, "measured": 200}}
            )
        assert monitor.divergence > 1.25
        assert monitor.should_reconfigure()

    def test_empty_profile_is_ignored(self):
        monitor = CostModelMonitor()
        monitor.ingest({"totals": {"nodes": 0, "planned": 0, "measured": 0}})
        assert monitor.profiles_ingested == 0

    def test_observe_profile_reconfigures_the_assembler(self):
        rng = np.random.default_rng(5)
        shape = CubeShape((8, 8))
        assembler = DynamicViewAssembler(
            rng.integers(0, 50, size=(8, 8)).astype(np.float64),
            shape,
            reconfigure_every=10_000,
        )
        assembler.query(shape.aggregated_view([0]))
        divergent = {
            "totals": {"nodes": 2, "planned": 100, "measured": 300},
            "elements": {"A(1,0)": {"divergence": 3.0}},
        }
        record = None
        monitor = assembler.cost_monitor
        for _ in range(10):
            record = assembler.observe_profile(divergent)
            if record is not None:
                break
        assert record is not None
        assert assembler.history[-1] is record
        # The evidence resets with the new configuration.
        assert assembler.cost_monitor is not monitor
        assert assembler.cost_monitor.divergence == 1.0

    def test_server_profile_feeds_the_monitor(self):
        server = _make_server()
        server.query_batch(BATCH, max_workers=2, dispatch_threshold=0)
        profile = server.query_profile()
        monitor = CostModelMonitor()
        monitor.ingest(profile)
        assert monitor.profiles_ingested == 1
        assert monitor.divergence == 1.0


class TestUntracedServer:
    def test_tracing_false_records_no_spans_but_serves(self):
        server = _make_server(observability=Observability(tracing=False))
        result = server.query_batch(BATCH, max_workers=2)
        assert len(result) == len(BATCH)
        assert server.tracer.spans() == ()
        # Metrics still flow: the registry is active regardless.
        assert server.metrics.counter("server_queries_total").total() > 0


class TestConcurrentTraces:
    def test_parallel_batches_get_distinct_connected_traces(self):
        server = _make_server()
        errors = []

        def work():
            try:
                server.query_batch(BATCH[:3], max_workers=2)
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=work) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        trace_ids = server.tracer.trace_ids()
        assert len(trace_ids) == 3
        for trace_id in trace_ids:
            _assert_connected(server.tracer.trace(trace_id))


class TestCardinalityGuard:
    def test_overflow_folds_and_counts(self):
        registry = MetricsRegistry(max_label_sets=4)
        counter = registry.counter("hot_keys_total", "per-key hits")
        for i in range(10):
            counter.inc(key=f"k{i}")
        # Four real series survive; six writes folded into the overflow
        # bucket and were accounted.
        assert counter.value(overflow="true") == 6
        assert registry.dropped_series_total() == 6
        assert (
            registry.counter("metrics_dropped_series_total").value(
                metric="hot_keys_total"
            )
            == 6
        )
        # Established series keep counting normally under overflow.
        counter.inc(key="k0")
        assert counter.value(key="k0") == 2
        assert registry.dropped_series_total() == 6

    def test_overflow_series_visible_in_exposition(self):
        registry = MetricsRegistry(max_label_sets=2)
        counter = registry.counter("wild_total", "wild labels")
        for i in range(5):
            counter.inc(key=f"k{i}")
        text = prometheus_text(registry)
        assert 'wild_total{overflow="true"} 3' in text
        assert "metrics_dropped_series_total" in text

    def test_server_surfaces_drops_in_health(self):
        server = _make_server()
        counter = server.metrics.counter("custom_total", "test series")
        for i in range(server.metrics.max_label_sets + 5):
            counter.inc(key=f"k{i}")
        server.view(["d0"])
        loss = server.health()["slo"]["telemetry_loss"]
        assert loss["metrics_dropped_series"] == 5
        server.close()


class TestTelemetryLoss:
    def test_loss_sections_present_and_zero_when_healthy(self):
        server = _make_server()
        server.view(["d0"])
        loss = server.health()["slo"]["telemetry_loss"]
        assert loss["tracer_dropped_spans"] == 0
        assert loss["events_dropped"] == 0
        assert loss["metrics_dropped_series"] == 0
        assert loss["flight"] == {
            "pending_traces_dropped": 0,
            "trace_spans_dropped": 0,
            "kept_traces_evicted": 0,
        }
        server.close()

    def test_event_ring_drops_are_accounted(self):
        server = _make_server(observability=Observability(max_events=4))
        with server.obs.activate():
            for i in range(10):
                log_event("noise", i=i)
        loss = server.health()["slo"]["telemetry_loss"]
        assert loss["events_dropped"] == 6
        # The flat key dashboards already scrape stays in lockstep.
        assert server.health()["slo"]["events_dropped"] == 6
        server.close()
