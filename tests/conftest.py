"""Shared fixtures and hypothesis profiles for the test-suite."""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.core.element import CubeShape

# CI runs with HYPOTHESIS_PROFILE=ci: derandomized (reproducible shrink
# paths, no flaky examples across matrix entries) and without deadlines
# (shared runners have noisy clocks).  The default profile stays random so
# local runs keep exploring new examples.
settings.register_profile(
    "ci",
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile("dev", deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator."""
    return np.random.default_rng(12345)


@pytest.fixture
def shape_2x2() -> CubeShape:
    """The paper's pedagogical 2x2 shape (Section 7.1)."""
    return CubeShape((2, 2))


@pytest.fixture
def shape_4x4() -> CubeShape:
    return CubeShape((4, 4))


@pytest.fixture
def shape_3d() -> CubeShape:
    """A small non-square 3-D shape exercising unequal depths."""
    return CubeShape((8, 4, 2))


@pytest.fixture
def cube_3d(rng, shape_3d) -> np.ndarray:
    """Random integer-valued data for the 3-D shape."""
    return rng.integers(0, 100, size=shape_3d.sizes).astype(np.float64)


@pytest.fixture
def cube_4x4(rng, shape_4x4) -> np.ndarray:
    return rng.integers(0, 100, size=shape_4x4.sizes).astype(np.float64)
