"""TuningConfig: the single source of truth for performance knobs.

Covers the contract the autotuner leans on: construction reproduces the
historical module-constant defaults exactly (bit-identical serving),
persistence round-trips, unknown knobs fail loudly, the knob catalogue
stays in sync with the dataclass, and the profile threads through to
every layer that reads it — server result cache, buffer pools (monolithic
and sharded), and the ``health()`` audit surface.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.cube.datacube import DataCube
from repro.cube.dimensions import Dimension
from repro.server import OLAPServer
from repro.tuning import DEFAULT_TUNING, KNOBS, TuningConfig, describe_knobs


def make_server(**kwargs) -> OLAPServer:
    sizes = (8, 4, 4)
    rng = np.random.default_rng(11)
    values = rng.integers(0, 100, size=sizes).astype(np.float64)
    dims = [
        Dimension(f"d{i}", list(range(n))) for i, n in enumerate(sizes)
    ]
    return OLAPServer(DataCube(values, dims, measure="amount"), **kwargs)


class TestConfigValueObject:
    def test_defaults_equal_shared_instance(self):
        assert TuningConfig() == DEFAULT_TUNING
        assert hash(TuningConfig()) == hash(DEFAULT_TUNING)

    def test_dict_round_trip(self):
        config = TuningConfig(dispatch_threshold=1 << 20, cache_entries=64)
        assert TuningConfig.from_dict(config.to_dict()) == config

    def test_save_load_round_trip(self, tmp_path):
        config = TuningConfig(
            dispatch_threshold=1 << 18,
            pool_min_cells=1 << 12,
            max_workers=2,
            cache_cells=100_000,
        )
        path = config.save(tmp_path / "tuned.json")
        assert TuningConfig.load(path) == config

    def test_unknown_knob_is_a_loud_error(self):
        with pytest.raises(ValueError, match="dispatch_treshold"):
            TuningConfig.from_dict({"dispatch_treshold": 1 << 16})

    @pytest.mark.parametrize(
        "overrides",
        [
            {"dispatch_threshold": -1},
            {"pool_min_cells": -5},
            {"cache_entries": -1},
            {"max_workers": 0},
            {"max_retries": -1},
            {"retry_backoff_ms": -0.5},
            {"cache_cells": 0},
        ],
    )
    def test_invalid_knobs_rejected(self, overrides):
        with pytest.raises(ValueError):
            TuningConfig(**overrides)

    def test_replace_validates(self):
        tuned = DEFAULT_TUNING.replace(dispatch_threshold=1 << 20)
        assert tuned.dispatch_threshold == 1 << 20
        assert DEFAULT_TUNING.dispatch_threshold != 1 << 20
        with pytest.raises(ValueError):
            DEFAULT_TUNING.replace(max_workers=0)


class TestKnobCatalogue:
    def test_catalogue_matches_dataclass_fields(self):
        fields = {f.name for f in dataclasses.fields(TuningConfig)}
        catalogued = {name for name, _, _, _ in KNOBS}
        assert catalogued == fields

    def test_catalogue_defaults_match_config_defaults(self):
        defaults = DEFAULT_TUNING.to_dict()
        for name, default, subsystem, effect in KNOBS:
            assert defaults[name] == default
            assert subsystem and effect

    def test_describe_joins_effective_values(self):
        tuned = TuningConfig(dispatch_threshold=1 << 20)
        rows = {row["knob"]: row for row in describe_knobs(tuned)}
        assert rows["dispatch_threshold"]["value"] == 1 << 20
        assert (
            rows["dispatch_threshold"]["default"]
            == DEFAULT_TUNING.dispatch_threshold
        )


class TestServerThreading:
    def test_health_exposes_effective_tuning(self):
        server = make_server(tuning=TuningConfig(cache_entries=16))
        tuning = server.health()["tuning"]
        assert tuning["cache_entries"] == 16
        assert tuning == server.tuning.to_dict()

    def test_ctor_overrides_surface_in_health(self):
        server = make_server(cache_capacity=7, pool_max_cells=1 << 12)
        tuning = server.health()["tuning"]
        assert tuning["cache_entries"] == 7
        assert tuning["pool_max_cells"] == 1 << 12

    def test_cache_capacity_conflict_rejected(self):
        with pytest.raises(ValueError, match="cache_capacity"):
            make_server(cache_capacity=7, cache_entries=9)

    def test_default_profile_serves_bit_identically(self):
        explicit = make_server(tuning=DEFAULT_TUNING)
        implicit = make_server()
        requests = [["d0"], ["d1", "d2"], [], ["d0", "d1", "d2"]]
        for got, want in zip(
            explicit.query_batch(requests), implicit.query_batch(requests)
        ):
            assert got.tobytes() == want.tobytes()

    def test_pool_floor_threads_to_monolithic_set(self):
        tuned = TuningConfig(pool_min_cells=1 << 13, pool_max_cells=1 << 15)
        server = make_server(tuning=tuned)
        pool = server._state.materialized.pool
        assert pool.min_cells == 1 << 13
        assert pool.max_cells == 1 << 15

    def test_pool_floor_threads_to_sharded_set(self):
        # The satellite fix: ShardedSet must take the pool floor from the
        # profile instead of hard-coding POOL_MIN_CELLS, so sharded and
        # monolithic paths tune identically.
        tuned = TuningConfig(pool_min_cells=1 << 13, pool_max_cells=1 << 15)
        server = make_server(tuning=tuned, shards=2)
        sharded = server._state.materialized
        pool = sharded._pool
        assert pool.min_cells == 1 << 13
        assert pool.max_cells == 1 << 15
        requests = [["d0"], ["d1", "d2"], []]
        reference = make_server().query_batch(requests)
        for got, want in zip(server.query_batch(requests), reference):
            assert got.tobytes() == want.tobytes()
