"""Concurrent reconfiguration vs. readers: snapshot-consistency of serving.

:meth:`OLAPServer.reconfigure` swaps the whole serving state —
``(materialized, range_engine, epoch, cache)`` — in one reference
assignment.  These tests hammer that swap with reader threads and assert
every answer is bit-identical to the fault-free expectation: a reader must
see either the old configuration or the new one in full, never a mix
(e.g. a new materialized set with an old epoch's cache entries).

The cube holds integer values, so every assembly route — including
re-routes chosen mid-swap — is exact in float64 and the bit-identity
assertion is meaningful.
"""

import threading

import numpy as np

from repro.cube.datacube import DataCube
from repro.cube.dimensions import Dimension
from repro.server import OLAPServer


def _make_server(seed=5, sizes=(8, 8), **kwargs):
    rng = np.random.default_rng(seed)
    values = rng.integers(0, 100, size=sizes).astype(np.float64)
    dims = [Dimension(f"d{i}", list(range(n))) for i, n in enumerate(sizes)]
    return OLAPServer(DataCube(values, dims, measure="amount"), **kwargs)


def _expected_answers(seed=5, sizes=(8, 8)):
    """Fault-free single-threaded answers for every view request."""
    server = _make_server(seed=seed, sizes=sizes)
    requests = [[], ["d0"], ["d1"], ["d0", "d1"]]
    return requests, {
        tuple(request): server.view(request).tobytes() for request in requests
    }


class TestConcurrentReconfigure:
    #: Overridden by the sharded subclass; the expectations stay
    #: monolithic either way, so the sharded run doubles as a concurrent
    #: differential check.
    server_kwargs: dict = {}

    def _run(self, serve, reconfigures=6, readers=4):
        """Drive ``serve(request)`` from reader threads across reconfigs."""
        requests, expected = _expected_answers()
        stop = threading.Event()
        mismatches: list = []
        errors: list = []

        def reader(index: int):
            i = index
            while not stop.is_set():
                request = requests[i % len(requests)]
                i += 1
                try:
                    answers = serve(request)
                except Exception as exc:  # noqa: BLE001 - the assertion
                    errors.append(f"{type(exc).__name__}: {exc}")
                    return
                if answers != expected[tuple(request)]:
                    mismatches.append(tuple(request))
                    return

        threads = [
            threading.Thread(target=reader, args=(i,)) for i in range(readers)
        ]
        for thread in threads:
            thread.start()
        try:
            for _ in range(reconfigures):
                self.server.reconfigure()
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=10)
        assert not errors, errors
        assert not mismatches, mismatches

    def test_views_stay_bit_identical_across_reconfigurations(self):
        self.server = _make_server(**self.server_kwargs)

        def serve(request):
            return self.server.view(request).tobytes()

        self._run(serve)
        assert self.server.epoch >= 6

    def test_batches_stay_bit_identical_across_reconfigurations(self):
        self.server = _make_server(**self.server_kwargs)

        def serve(request):
            answers = self.server.query_batch([request, ["d0"]])
            return answers[0].tobytes()

        requests, expected = _expected_answers()

        def serve_checked(request):
            blob = serve(request)
            # Also pin the second slot of every batch.
            second = self.server.query_batch([request, ["d0"]])[1].tobytes()
            assert second == expected[("d0",)]
            return blob

        self._run(serve_checked, reconfigures=4, readers=3)

    def test_epoch_and_materialized_swap_together(self):
        server = _make_server(**self.server_kwargs)
        seen: list = []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                state = server._state
                # One snapshot object is internally consistent by
                # construction; the public properties must agree with it
                # when read through a single reference.
                seen.append(
                    (state.epoch, state.materialized is state.materialized)
                )

        thread = threading.Thread(target=reader)
        thread.start()
        try:
            for _ in range(5):
                server.reconfigure()
        finally:
            stop.set()
            thread.join(timeout=10)
        epochs = [epoch for epoch, _ in seen]
        assert epochs == sorted(epochs)  # epochs only move forward

    def test_range_sums_survive_reconfiguration(self):
        server = _make_server(**self.server_kwargs)
        expected = server.range_sum(((1, 7), (2, 6)))
        stop = threading.Event()
        bad: list = []

        def reader():
            while not stop.is_set():
                value = server.range_sum(((1, 7), (2, 6)))
                if value != expected:
                    bad.append(value)
                    return

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        try:
            for _ in range(4):
                server.reconfigure()
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=10)
        assert not bad, bad


class TestConcurrentUpdates:
    """Updates racing reconfigure: no delta may miss the next snapshot.

    Regression: :meth:`OLAPServer.update` used to mutate ``cube.values``
    after patching the snapshot's materialized set *outside* the
    reconfigure lock, so a concurrent ``reconfigure()`` could rebuild the
    new serving state from a base cube that had the stored-set half of an
    in-flight delta but not the base-cube half (or vice versa).  Updates
    now run under the same ordering guarantee as the snapshot swap; after
    any interleaving, the cube and every served view must carry exactly
    the sum of all applied deltas.
    """

    server_kwargs: dict = {}

    def _hammer(self, updaters=2, updates_each=40, reconfigures=8):
        server = _make_server(**self.server_kwargs)
        base = server.cube.values.copy()
        applied = np.zeros_like(base)
        lock = threading.Lock()
        errors: list = []

        def updater(worker: int):
            rng = np.random.default_rng(worker)
            try:
                for step in range(updates_each):
                    i = int(rng.integers(0, base.shape[0]))
                    j = int(rng.integers(0, base.shape[1]))
                    delta = float(rng.integers(1, 5))
                    if step % 3 == 2:
                        server.update_many(
                            np.array([[i, j], [0, 0]]), [delta, 1.0]
                        )
                        with lock:
                            applied[i, j] += delta
                            applied[0, 0] += 1.0
                    else:
                        server.update(delta, d0=i, d1=j)
                        with lock:
                            applied[i, j] += delta
            except Exception as exc:  # noqa: BLE001 - the assertion
                errors.append(f"{type(exc).__name__}: {exc}")

        threads = [
            threading.Thread(target=updater, args=(w,))
            for w in range(updaters)
        ]
        for thread in threads:
            thread.start()
        try:
            for _ in range(reconfigures):
                server.reconfigure()
        finally:
            for thread in threads:
                thread.join(timeout=30)
        assert not errors, errors
        return server, base + applied

    def test_no_delta_is_lost_across_reconfigurations(self):
        server, expected = self._hammer()
        assert np.array_equal(server.cube.values, expected)
        # Served answers must reflect every delta too — the materialized
        # set the last reconfigure built, plus any updates patched into
        # it afterwards.
        assert np.array_equal(
            server.view(["d0"]).ravel(), expected.sum(axis=1)
        )
        assert np.array_equal(
            server.view(["d0", "d1"]), expected
        )
        assert server.range_sum(((0, 8), (0, 8))) == expected.sum()


class TestShardedConcurrentUpdates(TestConcurrentUpdates):
    server_kwargs = {"shards": 2}


class TestShardedConcurrentReconfigure(TestConcurrentReconfigure):
    """The same hammer against a two-shard server.

    ``sizes=(8, 8)`` shards along axis 1 (largest extent, ties break to
    the last axis).  Expectations are still computed monolithically, so
    every reader doubles as a scatter-gather differential check while
    ``reconfigure`` migrates both shards' selections mid-flight.
    """

    server_kwargs = {"shards": 2}

    def test_shard_epochs_advance_with_reconfiguration(self):
        server = _make_server(**self.server_kwargs)
        before = server._state.materialized.epochs
        server.reconfigure()
        after = server._state.materialized.epochs
        assert len(after) == 2
        assert all(b < a for b, a in zip(before, after))

    def test_quarantined_shard_reroutes_under_concurrent_readers(self):
        """Corrupt one shard's root copy, then hammer it with concurrent
        batch readers across reconfigurations: the damaged shard must
        degrade to its base slab without a single wrong byte and without
        taking down the server."""
        from repro.resilience.faults import FaultInjector, FaultRule

        injector = FaultInjector(
            [
                FaultRule(
                    site="materialize.store",
                    kind="corrupt",
                    probability=1.0,
                    start_after=1,
                    max_fires=1,
                )
            ],
            seed=13,
        )
        with injector.activate():
            # Constructor stores the root shard by shard: shard 1's copy
            # is the second store invocation and gets damaged.
            self.server = _make_server(**self.server_kwargs)

            def serve(request):
                return self.server.query_batch([request])[0].tobytes()

            self._run(serve, reconfigures=4, readers=3)
        assert (
            self.server.metrics.counter("integrity_failures_total").total()
            >= 1
        )
