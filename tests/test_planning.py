"""Tests for EXPLAIN-style assembly plans."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bases import random_wavelet_packet_basis
from repro.core.element import CubeShape
from repro.core.materialize import MaterializedSet
from repro.core.operators import OpCounter
from repro.core.planning import explain, render_plan
from repro.core.select_redundant import generation_cost


class TestPlanStructure:
    def test_stored_target(self, shape_4x4):
        root = shape_4x4.root()
        plan = explain(root, [root])
        assert plan.kind == "stored"
        assert plan.total_cost == 0.0

    def test_aggregate_plan(self, shape_4x4):
        root = shape_4x4.root()
        total = shape_4x4.total_aggregation()
        plan = explain(total, [root])
        assert plan.kind == "aggregate"
        assert plan.source == root
        assert plan.total_cost == 15.0

    def test_synthesis_plan(self, shape_4x4):
        root = shape_4x4.root()
        p, r = root.children(0)
        plan = explain(root, [p, r])
        assert plan.kind == "synthesize"
        assert plan.dim == 0
        assert {child.kind for child in plan.children} == {"stored"}
        assert plan.total_cost == 16.0

    def test_unreachable_target(self, shape_4x4):
        p = shape_4x4.root().partial_child(0)
        with pytest.raises(ValueError, match="cannot generate"):
            explain(shape_4x4.root(), [p])


class TestPlanCostsMatchProcedure3:
    def test_random_bases(self, rng):
        shape = CubeShape((4, 4))
        for seed in range(10):
            basis = random_wavelet_packet_basis(
                shape, np.random.default_rng(seed)
            )
            for view in shape.aggregated_views():
                plan = explain(view, basis)
                assert plan.total_cost == pytest.approx(
                    generation_cost(view, basis)
                )

    def test_plan_cost_matches_executed_ops(self, shape_4x4, cube_4x4, rng):
        basis = random_wavelet_packet_basis(shape_4x4, rng)
        ms = MaterializedSet.from_cube(cube_4x4, basis)
        view = shape_4x4.aggregated_view([0, 1])
        plan = explain(view, basis)
        counter = OpCounter()
        ms.assemble(view, counter=counter)
        assert counter.total == plan.total_cost


class TestRendering:
    def test_render_contains_all_nodes(self, shape_4x4):
        root = shape_4x4.root()
        p, r = root.children(1)
        plan = explain(root, [p, r])
        text = render_plan(plan)
        assert "synthesize" in text
        assert text.count("read") == 2

    def test_walk_enumerates_tree(self, shape_4x4):
        root = shape_4x4.root()
        p, r = root.children(1)
        plan = explain(root, [p, r])
        assert len(list(plan.walk())) == 3
