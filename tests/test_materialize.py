"""Tests for element materialization and assembly (paper §3, §5.3)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bases import random_wavelet_packet_basis, wavelet_basis
from repro.core.element import CubeShape, ElementId
from repro.core.graph import ViewElementGraph
from repro.core.materialize import MaterializedSet, compute_element
from repro.core.operators import OpCounter
from repro.core.select_redundant import generation_cost


def _reference_element_value(data: np.ndarray, element: ElementId) -> np.ndarray:
    """Independent oracle: apply the per-dimension Haar cascades directly."""
    out = data.astype(np.float64)
    for dim in range(element.shape.ndim):
        level, index = element.nodes[dim]
        for step in range(level):
            bit = (index >> (level - 1 - step)) & 1
            pairs = out.reshape(
                out.shape[:dim] + (out.shape[dim] // 2, 2) + out.shape[dim + 1 :]
            )
            even = np.take(pairs, 0, axis=dim + 1)
            odd = np.take(pairs, 1, axis=dim + 1)
            out = even - odd if bit else even + odd
    return out


class TestComputeElement:
    def test_matches_reference_for_all_elements(self, shape_4x4, cube_4x4):
        graph = ViewElementGraph(shape_4x4)
        for element in graph.elements():
            np.testing.assert_array_equal(
                compute_element(cube_4x4, element),
                _reference_element_value(cube_4x4, element),
            )

    def test_aggregated_view_is_numpy_sum(self, shape_3d, cube_3d):
        view = shape_3d.aggregated_view([0, 2])
        values = compute_element(cube_3d, view)
        np.testing.assert_array_equal(
            values, cube_3d.sum(axis=(0, 2), keepdims=True)
        )

    def test_cost_is_volume_difference(self, shape_3d, cube_3d):
        element = ElementId(shape_3d, ((2, 1), (1, 0), (0, 0)))
        counter = OpCounter()
        compute_element(cube_3d, element, counter=counter)
        assert counter.total == shape_3d.volume - element.volume

    def test_shape_mismatch(self, shape_4x4):
        with pytest.raises(ValueError, match="does not match"):
            compute_element(np.zeros((2, 2)), shape_4x4.root())


class TestMaterializedSet:
    def test_from_cube_and_lookup(self, shape_4x4, cube_4x4):
        elements = list(shape_4x4.root().children(0))
        ms = MaterializedSet.from_cube(cube_4x4, elements)
        assert len(ms) == 2
        assert ms.storage == shape_4x4.volume
        for element in elements:
            assert element in ms
            np.testing.assert_array_equal(
                ms.array(element), compute_element(cube_4x4, element)
            )

    def test_from_cube_requires_elements(self, cube_4x4):
        with pytest.raises(ValueError, match="at least one element"):
            MaterializedSet.from_cube(cube_4x4, [])

    def test_store_validates_shape(self, shape_4x4):
        ms = MaterializedSet(shape_4x4)
        with pytest.raises(ValueError, match="does not match"):
            ms.store(shape_4x4.root(), np.zeros((2, 2)))

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_reconstruct_from_random_basis(self, seed):
        """Any wavelet-packet basis perfectly reconstructs the cube."""
        shape = CubeShape((4, 4))
        rng = np.random.default_rng(seed)
        data = rng.integers(-50, 50, size=shape.sizes).astype(np.float64)
        basis = random_wavelet_packet_basis(shape, rng)
        ms = MaterializedSet.from_cube(data, basis)
        np.testing.assert_allclose(ms.reconstruct_cube(), data)

    def test_assemble_any_element_from_wavelet_basis(
        self, shape_4x4, cube_4x4
    ):
        ms = MaterializedSet.from_cube(cube_4x4, wavelet_basis(shape_4x4))
        graph = ViewElementGraph(shape_4x4)
        for element in list(graph.elements())[::5]:
            np.testing.assert_allclose(
                ms.assemble(element),
                _reference_element_value(cube_4x4, element),
            )

    def test_assemble_counts_match_cost_model(self, shape_4x4, cube_4x4, rng):
        """Actually-performed operations equal Procedure 3's prediction."""
        basis = random_wavelet_packet_basis(shape_4x4, rng)
        ms = MaterializedSet.from_cube(cube_4x4, basis)
        for view in shape_4x4.aggregated_views():
            counter = OpCounter()
            ms.assemble(view, counter=counter)
            predicted = generation_cost(view, ms.elements)
            assert counter.total == predicted

    def test_assemble_view_helper(self, shape_3d, cube_3d):
        ms = MaterializedSet.from_cube(cube_3d, [shape_3d.root()])
        values = ms.assemble_view([0, 1])
        np.testing.assert_array_equal(
            values, cube_3d.sum(axis=(0, 1), keepdims=True)
        )

    def test_incomplete_set_raises(self, shape_4x4, cube_4x4):
        p = shape_4x4.root().partial_child(0)
        ms = MaterializedSet.from_cube(cube_4x4, [p])
        assert not ms.can_assemble(shape_4x4.root())
        with pytest.raises(ValueError, match="not complete"):
            ms.reconstruct_cube()
        # ...but descendants of p are fine.
        assert ms.can_assemble(p.partial_child(1))

    def test_cross_shape_target_rejected(self, shape_4x4, cube_4x4):
        ms = MaterializedSet.from_cube(cube_4x4, [shape_4x4.root()])
        with pytest.raises(ValueError, match="different cube shape"):
            ms.assemble(CubeShape((8, 8)).root())

    def test_from_cube_reuses_ancestors(self, shape_4x4, cube_4x4):
        """Materializing a pyramid costs less than independent cascades."""
        from repro.core.bases import gaussian_pyramid

        pyramid = gaussian_pyramid(shape_4x4)
        counter = OpCounter()
        MaterializedSet.from_cube(cube_4x4, pyramid, counter=counter)
        independent = sum(shape_4x4.volume - e.volume for e in pyramid)
        assert counter.total < independent

    def test_assemble_prefers_cheap_route(self, shape_4x4, cube_4x4):
        """With the cube and a small view stored, the small view's
        descendants aggregate from the view, not the cube."""
        view = shape_4x4.aggregated_view([0])  # vol 4
        ms = MaterializedSet.from_cube(cube_4x4, [shape_4x4.root(), view])
        total = shape_4x4.total_aggregation()
        counter = OpCounter()
        ms.assemble(total, counter=counter)
        assert counter.total == view.volume - total.volume  # 3, not 15


class TestIncrementalMaintenance:
    """apply_update propagates single-cell deltas into stored elements."""

    def test_update_matches_recompute(self, shape_4x4, cube_4x4, rng):
        from repro.core.bases import random_wavelet_packet_basis

        basis = random_wavelet_packet_basis(shape_4x4, rng)
        ms = MaterializedSet.from_cube(cube_4x4, basis)
        updated = cube_4x4.copy()
        for _ in range(10):
            coords = tuple(int(rng.integers(n)) for n in shape_4x4.sizes)
            delta = float(rng.integers(-5, 6))
            updated[coords] += delta
            ms.apply_update(coords, delta)
        fresh = MaterializedSet.from_cube(updated, basis)
        for element in basis:
            np.testing.assert_allclose(
                ms.array(element), fresh.array(element)
            )

    def test_update_preserves_reconstruction(self, shape_4x4, cube_4x4):
        ms = MaterializedSet.from_cube(
            cube_4x4, wavelet_basis(shape_4x4)
        )
        ms.apply_update((1, 2), 7.0)
        expected = cube_4x4.copy()
        expected[1, 2] += 7.0
        np.testing.assert_allclose(ms.reconstruct_cube(), expected)

    def test_update_cost_is_one_op_per_element(self, shape_4x4, cube_4x4):
        ms = MaterializedSet.from_cube(cube_4x4, wavelet_basis(shape_4x4))
        counter = OpCounter()
        ms.apply_update((0, 0), 1.0, counter=counter)
        assert counter.total == len(ms)

    def test_update_validation(self, shape_4x4, cube_4x4):
        ms = MaterializedSet.from_cube(cube_4x4, [shape_4x4.root()])
        with pytest.raises(ValueError, match="coordinates"):
            ms.apply_update((1,), 1.0)
        with pytest.raises(ValueError, match="outside"):
            ms.apply_update((4, 0), 1.0)

    def test_residual_sign_handling(self):
        """Updating an odd coordinate flips residual coefficients."""
        shape = CubeShape((2,))
        data = np.array([3.0, 1.0])
        p = shape.root().partial_child(0)
        r = shape.root().residual_child(0)
        ms = MaterializedSet.from_cube(data, [p, r])
        ms.apply_update((1,), 5.0)
        assert ms.array(p)[0] == 9.0  # 4 + 5
        assert ms.array(r)[0] == -3.0  # 2 - 5


class TestBatchUpdates:
    def test_batch_matches_sequential(self, shape_4x4, cube_4x4, rng):
        from repro.core.bases import random_wavelet_packet_basis

        basis = random_wavelet_packet_basis(shape_4x4, rng)
        a = MaterializedSet.from_cube(cube_4x4, basis)
        b = MaterializedSet.from_cube(cube_4x4, basis)
        coords = rng.integers(0, 4, size=(20, 2))
        deltas = rng.integers(-5, 6, size=20).astype(float)
        a.apply_updates(coords, deltas)
        for (x, y), delta in zip(coords, deltas):
            b.apply_update((int(x), int(y)), float(delta))
        for element in basis:
            np.testing.assert_allclose(a.array(element), b.array(element))

    def test_batch_matches_recompute(self, shape_4x4, cube_4x4, rng):
        basis = wavelet_basis(shape_4x4)
        ms = MaterializedSet.from_cube(cube_4x4, basis)
        coords = rng.integers(0, 4, size=(15, 2))
        deltas = rng.integers(-9, 10, size=15).astype(float)
        ms.apply_updates(coords, deltas)
        updated = cube_4x4.copy()
        np.add.at(updated, tuple(coords.T), deltas)
        np.testing.assert_allclose(ms.reconstruct_cube(), updated)

    def test_batch_validation(self, shape_4x4, cube_4x4):
        ms = MaterializedSet.from_cube(cube_4x4, [shape_4x4.root()])
        with pytest.raises(ValueError, match="coordinates must be"):
            ms.apply_updates(np.zeros((2, 3), dtype=int), np.zeros(2))
        with pytest.raises(ValueError, match="deltas length"):
            ms.apply_updates(np.zeros((2, 2), dtype=int), np.zeros(3))
        with pytest.raises(ValueError, match="outside"):
            ms.apply_updates(np.array([[9, 0]]), np.ones(1))

    def test_empty_batch_is_noop(self, shape_4x4, cube_4x4):
        ms = MaterializedSet.from_cube(cube_4x4, [shape_4x4.root()])
        before = ms.array(shape_4x4.root()).copy()
        ms.apply_updates(np.empty((0, 2), dtype=int), np.empty(0))
        np.testing.assert_array_equal(ms.array(shape_4x4.root()), before)

    def test_duplicate_coordinates_accumulate(self, shape_4x4, cube_4x4):
        ms = MaterializedSet.from_cube(cube_4x4, [shape_4x4.root()])
        ms.apply_updates(np.array([[0, 0], [0, 0]]), np.array([2.0, 3.0]))
        assert ms.array(shape_4x4.root())[0, 0] == cube_4x4[0, 0] + 5.0
