"""Tests that the experiment drivers reproduce the paper's results.

Tables 1 and 2 must match *exactly* (they are deterministic).  Figures 8
and 9 are statistical, so small-scale runs assert the qualitative shapes
the paper reports: orderings, dominance, and convergence.
"""

from __future__ import annotations

import pytest

from repro.experiments import figure8, figure9, table1, table2


class TestTable1:
    def test_all_rows_match_paper(self):
        for row in table1.run():
            assert row.matches_paper, f"(d={row.d}, n={row.n}) mismatches"

    def test_enumeration_cross_check(self):
        """Brute-force enumeration agrees with the formulas (small shape)."""
        from repro.core.element import CubeShape

        shape = CubeShape((4,) * 4)
        counts = table1.enumerate_counts(shape)
        assert counts == (
            shape.num_aggregated_views(),
            shape.num_intermediate_elements(),
            shape.num_residual_elements(),
            shape.num_view_elements(),
        )

    def test_render(self):
        rendered = table1.main()
        assert "923,521" in rendered
        assert "MISMATCH" not in rendered


class TestTable2:
    def test_all_rows_match_paper(self):
        for row in table2.run():
            assert row.matches_paper, f"{row.members} mismatches paper"

    def test_optimum_is_three(self):
        assert table2.optimal_cost() == pytest.approx(3.0)

    def test_render(self):
        rendered = table2.main()
        assert "MISMATCH" not in rendered
        assert "{V3,V6,V7}" in rendered

    def test_element_volumes(self):
        elements = table2.pedagogical_elements()
        volumes = {name: e.volume for name, e in elements.items()}
        assert volumes == {
            "V0": 4,
            "V1": 2,
            "V2": 1,
            "V3": 1,
            "V4": 2,
            "V5": 1,
            "V6": 1,
            "V7": 2,
            "V8": 2,
        }


class TestFigure8:
    @pytest.fixture(scope="class")
    def result(self):
        return figure8.run(figure8.Figure8Config(num_trials=8, seed=77))

    def test_v_always_best(self, result):
        assert result.v_always_best

    def test_w_worse_than_d_on_most_trials(self, result):
        assert result.w_worse_than_d >= 0.5

    def test_ratio_in_paper_ballpark(self, result):
        """Within the skew-sensitivity bracket around the paper's 53.8%."""
        assert 0.4 <= result.mean_v_over_d <= 0.85

    def test_small_shape_run(self):
        config = figure8.Figure8Config(
            dimensions=2, domain_size=4, num_trials=3
        )
        result = figure8.run(config)
        assert len(result.trials) == 3
        assert result.v_always_best


class TestFigure9:
    @pytest.fixture(scope="class")
    def result(self):
        return figure9.run(
            figure9.Figure9Config(
                dimensions=3, domain_size=4, num_trials=3, budget_points=5
            )
        )

    def test_point_a_below_point_b(self, result):
        assert result.start_cost_elements < result.start_cost_views

    def test_elements_dominate(self, result):
        assert result.elements_dominate

    def test_both_converge(self, result):
        assert result.curve_views[-1][1] == pytest.approx(0.0, abs=1.0)
        assert result.curve_elements[-1][1] == pytest.approx(0.0, abs=1.0)

    def test_budget_grid(self, result):
        storages = [s for s, _ in result.curve_views]
        assert storages[0] == pytest.approx(1.0)
        assert storages[-1] == pytest.approx(
            result.config.max_storage_ratio
        )
