"""Multi-window burn-rate alerting: deterministic fire/resolve behaviour.

Everything here drives :class:`~repro.obs.alerts.AlertEngine` on a
:class:`~repro.obs.alerts.ManualClock`, so every assertion is about the
burn-rate *definition* — no sleeps, no wall-clock, no tolerance bands.
"""

import pytest

from repro.obs.alerts import (
    FAST_BUCKETS,
    AlertEngine,
    BurnRateRule,
    ManualClock,
    default_rules,
)

RULE = BurnRateRule(
    name="errors",
    objective=0.25,
    fast_window_s=60.0,
    slow_window_s=600.0,
    min_samples=4,
    bad_outcomes=("error", "timeout"),
)


def make_engine(rule=RULE, **kwargs):
    clock = ManualClock()
    engine = AlertEngine(rules=(rule,), clock=clock, **kwargs)
    return engine, clock


def feed(engine, clock, outcomes, step=10.0):
    """One outcome per bucket (step defaults to RULE's bucket width)."""
    transitions = []
    for outcome in outcomes:
        clock.advance(step)
        transitions.extend(engine.record(outcome))
    return transitions


class TestBurnRateRule:
    def test_bad_classification(self):
        rule = BurnRateRule(
            name="r",
            objective=0.1,
            bad_outcomes=("error",),
            latency_over_ms=100.0,
            bad_if_degraded=True,
        )
        assert rule.is_bad("error", 0.0, False)
        assert rule.is_bad("ok", 500.0, False)
        assert rule.is_bad("ok", 0.0, True)
        assert not rule.is_bad("ok", 50.0, False)

    def test_validation(self):
        with pytest.raises(ValueError):
            BurnRateRule(name="r", objective=0.0)
        with pytest.raises(ValueError):
            BurnRateRule(
                name="r", objective=0.1, fast_window_s=60.0, slow_window_s=30.0
            )
        with pytest.raises(ValueError, match="duplicate"):
            AlertEngine(rules=(RULE, RULE))

    def test_default_rules_cover_serving_outcomes(self):
        rules = default_rules(fast_window_s=30.0, slow_window_s=300.0)
        names = {rule.name for rule in rules}
        assert names == {"failures", "rejections", "degraded"}
        assert all(rule.fast_window_s == 30.0 for rule in rules)
        bad = {o for rule in rules for o in rule.bad_outcomes}
        assert bad == {"timeout", "error", "rejected"}


class TestFiring:
    def test_healthy_stream_never_fires(self):
        engine, clock = make_engine()
        transitions = feed(engine, clock, ["ok"] * 40)
        assert transitions == []
        assert engine.snapshot()["fired_total"] == 0
        assert engine.active() == ()

    def test_fires_only_when_both_windows_burn(self):
        # 12 good then solid bad: the fast window (6 buckets) saturates
        # with bad before the slow window crosses the objective; the
        # engine must hold fire until the *slow* burn also crosses.
        engine, clock = make_engine()
        feed(engine, clock, ["ok"] * 12)
        fired_after = None
        for i in range(20):
            clock.advance(10.0)
            for event in engine.record("error"):
                if event["state"] == "firing":
                    fired_after = i + 1
        # slow burn after k bads: (k / (12 + k)) / 0.25 >= 1  =>  k >= 4.
        assert fired_after == 4
        event = engine.active()[0]
        assert event["fast_burn"] >= 1.0 and event["slow_burn"] >= 1.0

    def test_transient_spike_does_not_fire(self):
        # One bad bucket inside a long healthy stream: fast window burns
        # briefly but the slow window never crosses the objective.
        engine, clock = make_engine()
        outcomes = ["ok"] * 20 + ["error", "error"] + ["ok"] * 20
        transitions = feed(engine, clock, outcomes)
        assert transitions == []

    def test_min_samples_gates_startup(self):
        # All-bad from the first record: burn is maximal immediately, but
        # nothing may fire before the slow window holds min_samples.
        engine, clock = make_engine()
        transitions = feed(engine, clock, ["error"] * 4)
        fires = [e for e in transitions if e["state"] == "firing"]
        assert len(fires) == 1
        assert fires[0]["slow"]["total"] == RULE.min_samples

    def test_fire_is_transition_not_level(self):
        engine, clock = make_engine()
        transitions = feed(engine, clock, ["error"] * 30)
        assert len([e for e in transitions if e["state"] == "firing"]) == 1

    def test_resolve_after_recovery(self):
        engine, clock = make_engine()
        feed(engine, clock, ["error"] * 8)
        assert engine.snapshot()["firing_now"] == ["errors"]
        # Healthy traffic pushes the bad buckets out of the fast window
        # first, then dilutes the slow window below the objective.
        transitions = feed(engine, clock, ["ok"] * 40)
        resolves = [e for e in transitions if e["state"] == "resolved"]
        assert len(resolves) == 1
        assert resolves[0]["duration_s"] > 0
        assert engine.snapshot()["firing_now"] == []
        assert engine.active() == ()
        # A relapse fires again — fired_total counts incidents.
        feed(engine, clock, ["error"] * 40)
        assert engine.snapshot()["fired_total"] == 2

    def test_old_incident_ages_out_of_slow_window(self):
        # After the slow window has fully rotated past the bad buckets,
        # the rule state must be as clean as a fresh engine.
        engine, clock = make_engine()
        feed(engine, clock, ["error"] * 8)
        feed(engine, clock, ["ok"] * 70)  # 700s > slow_window_s
        snap = engine.snapshot()["rules"]["errors"]
        assert snap["slow"]["bad"] == 0
        assert snap["firing"] is False


class TestEngineMechanics:
    def test_evaluate_every_batches_evaluation(self):
        engine, clock = make_engine(evaluate_every=5)
        feed(engine, clock, ["ok"] * 12)
        snap = engine.snapshot()
        assert snap["records"] == 12
        assert snap["evaluations"] == 2  # records 5 and 10
        # evaluate() forces a pass regardless of the cadence.
        engine.evaluate()
        assert engine.snapshot()["evaluations"] == 3

    def test_callbacks_fire_outside_lock_and_are_isolated(self):
        engine, clock = make_engine()
        seen = []

        def boom(event):
            raise RuntimeError("callback bug")

        def note(event):
            # Re-entering the engine proves callbacks run unlocked.
            seen.append((event["rule"], engine.snapshot()["fired_total"]))

        engine.on_fire.extend([boom, note])
        engine.on_resolve.append(note)
        feed(engine, clock, ["error"] * 8)
        feed(engine, clock, ["ok"] * 40)
        assert seen == [("errors", 1), ("errors", 1)]

    def test_history_is_bounded(self):
        engine, clock = make_engine(max_history=4)
        # Each cycle must burn >25% of a *full* slow window (60 buckets)
        # to re-fire, hence 20 errors; the ok run rotates them back out.
        for _ in range(6):
            feed(engine, clock, ["error"] * 20)
            feed(engine, clock, ["ok"] * 100)
        history = engine.history()
        assert len(history) == 4
        assert {e["state"] for e in history} == {"firing", "resolved"}

    def test_bucket_count_is_bounded(self):
        # The per-rule deque holds O(slow/fast * FAST_BUCKETS) buckets no
        # matter how long the stream runs.
        engine, clock = make_engine()
        feed(engine, clock, ["ok"] * 500)
        state = engine._states["errors"]
        assert len(state.buckets) <= state.keep + 1
        assert state.width == RULE.fast_window_s / FAST_BUCKETS

    def test_snapshot_shape(self):
        engine, clock = make_engine()
        feed(engine, clock, ["error"] * 8)
        snap = engine.snapshot()
        assert set(snap) == {
            "records",
            "evaluations",
            "fired_total",
            "firing_now",
            "rules",
            "history",
        }
        rule = snap["rules"]["errors"]
        assert rule["firing"] is True
        assert rule["fast"]["total"] <= FAST_BUCKETS
        assert snap["history"][0]["state"] == "firing"
