"""Tests for the baseline strategies (HRU and the paper's [D]/[V] wrappers)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    ViewLattice,
    greedy_view_element_selection,
    greedy_view_selection,
    hru_greedy,
)
from repro.core.element import CubeShape
from repro.core.population import QueryPopulation


@pytest.fixture
def lattice() -> ViewLattice:
    return ViewLattice({"a": 4, "b": 4, "c": 2})


class TestViewLattice:
    def test_views_enumeration(self, lattice):
        views = lattice.views()
        assert len(views) == 8
        assert lattice.top == frozenset({"a", "b", "c"})

    def test_sizes(self, lattice):
        assert lattice.size(lattice.top) == 32
        assert lattice.size(frozenset({"a"})) == 4
        assert lattice.size(frozenset()) == 1

    def test_answers(self, lattice):
        assert lattice.answers(frozenset({"a", "b"}), frozenset({"a"}))
        assert not lattice.answers(frozenset({"a"}), frozenset({"a", "b"}))

    def test_query_cost(self, lattice):
        materialized = [lattice.top, frozenset({"a", "b"})]
        assert lattice.query_cost(materialized, frozenset({"a"})) == 16
        assert lattice.query_cost(materialized, frozenset({"c"})) == 32
        assert lattice.query_cost([], frozenset({"a"})) == float("inf")

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one dimension"):
            ViewLattice({})


class TestHRUGreedy:
    def test_selects_top_first(self, lattice):
        selection = hru_greedy(lattice, k=2)
        assert selection.selected[0] == lattice.top
        assert len(selection.selected) == 3

    def test_benefit_decreases(self, lattice):
        selection = hru_greedy(lattice, k=4)
        assert list(selection.benefits) == sorted(
            selection.benefits, reverse=True
        )

    def test_space_budget(self, lattice):
        selection = hru_greedy(lattice, space_budget=40)
        assert selection.total_space <= 40

    def test_frequencies_bias_selection(self, lattice):
        hot = frozenset({"c"})
        frequencies = {v: 0.0 for v in lattice.views()}
        frequencies[hot] = 1.0
        selection = hru_greedy(lattice, k=1, frequencies=frequencies)
        # With all mass on {c}, the best single view is {c} itself.
        assert hot in selection.selected

    def test_unconstrained_selects_everything_beneficial(self, lattice):
        selection = hru_greedy(lattice)
        # All 7 non-top views eventually have positive benefit.
        assert len(selection.selected) == 8


class TestPaperStrategies:
    def test_view_greedy_reaches_zero_at_full_budget(self, rng):
        shape = CubeShape((4, 4))
        population = QueryPopulation.random_over_views(shape, rng)
        budget = (4 + 1) ** 2  # all views
        result = greedy_view_selection(shape, population, budget)
        assert result.stages[0].storage == shape.volume
        assert result.final_cost == pytest.approx(0.0)

    def test_element_greedy_starts_at_algorithm1(self, rng):
        shape = CubeShape((4, 4))
        population = QueryPopulation.random_over_views(
            shape, rng, include_root=False
        )
        from repro.core.select_basis import select_minimum_cost_basis
        from repro.core.select_redundant import total_processing_cost

        basis = select_minimum_cost_basis(shape, population)
        result = greedy_view_element_selection(
            shape, population, storage_budget=shape.volume
        )
        assert result.stages[0].cost == pytest.approx(
            total_processing_cost(list(basis.elements), population)
        )

    def test_element_start_beats_view_start(self):
        """Point a <= point b on average (paper Figure 9)."""
        shape = CubeShape((4, 4))
        gaps = []
        for seed in range(5):
            population = QueryPopulation.random_over_views(
                shape, np.random.default_rng(seed), include_root=False
            )
            d = greedy_view_selection(
                shape, population, storage_budget=shape.volume
            ).final_cost
            v = greedy_view_element_selection(
                shape, population, storage_budget=shape.volume
            ).final_cost
            gaps.append(d - v)
        assert all(gap >= -1e-9 for gap in gaps)
        assert sum(gaps) > 0
