"""Snapshot/restore round trips through the durable serving stack."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cube.datacube import DataCube
from repro.cube.dimensions import Dimension
from repro.durability import DurabilityConfig, latest_snapshot, list_snapshots
from repro.server import OLAPServer


def _cube(rng: np.random.Generator, sizes=(8, 8, 8)) -> DataCube:
    values = rng.integers(0, 100, size=sizes).astype(np.float64)
    dims = [
        Dimension(f"d{i}", list(range(n))) for i, n in enumerate(sizes)
    ]
    return DataCube(values, dims, measure="sales")


def _mutate(server: OLAPServer, rng: np.random.Generator, batches: int):
    """Apply ``batches`` update batches and return them for replaying."""
    applied = []
    for _ in range(batches):
        n = int(rng.integers(1, 4))
        coords = rng.integers(0, 8, size=(n, 3)).astype(np.int64)
        deltas = rng.integers(-5, 6, size=n).astype(np.float64)
        server.update_many(coords, deltas)
        applied.append((coords, deltas))
    return applied


def _answers(server: OLAPServer) -> dict[str, bytes]:
    return {
        "cube": server.cube.values.tobytes(),
        "d0": server.view(["d0"]).tobytes(),
        "d0d1": server.view(["d0", "d1"]).tobytes(),
        "d2": server.view(["d2"]).tobytes(),
    }


def _config(tmp_path, **overrides) -> DurabilityConfig:
    defaults = dict(fsync="off")
    defaults.update(overrides)
    return DurabilityConfig(tmp_path / "durable", **defaults)


class TestBootstrap:
    def test_fresh_directory_bootstraps_a_snapshot(self, tmp_path, rng):
        config = _config(tmp_path)
        with OLAPServer(_cube(rng), durability=config) as server:
            assert server._applied_seq == 0
        assert latest_snapshot(config.snapshot_dir) is not None

    def test_existing_lineage_rejected(self, tmp_path, rng):
        config = _config(tmp_path)
        with OLAPServer(_cube(rng), durability=config) as server:
            _mutate(server, rng, 2)
        with pytest.raises(ValueError, match="restore"):
            OLAPServer(_cube(rng), durability=config)

    def test_restore_without_snapshot_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no snapshot"):
            OLAPServer.restore(_config(tmp_path))


class TestRoundTrip:
    def test_monolithic(self, tmp_path, rng):
        config = _config(tmp_path)
        with OLAPServer(_cube(rng), durability=config) as server:
            _mutate(server, rng, 4)
            server.snapshot()
            _mutate(server, rng, 3)  # WAL-only suffix
            expected = _answers(server)
            applied = server._applied_seq
        with OLAPServer.restore(config) as restored:
            assert restored._applied_seq == applied == 7
            assert restored._replayed_records == 3
            assert _answers(restored) == expected
            # The lineage stays open for business.
            restored.update(2.0, d0=1, d1=2, d2=3)
            assert restored._applied_seq == applied + 1

    def test_sharded_same_layout(self, tmp_path, rng):
        config = _config(tmp_path)
        with OLAPServer(_cube(rng), shards=2, durability=config) as server:
            _mutate(server, rng, 5)
            server.snapshot()
            _mutate(server, rng, 2)
            expected = _answers(server)
        with OLAPServer.restore(config) as restored:
            assert restored.shards == 2
            assert restored._replayed_records == 2
            assert _answers(restored) == expected

    def test_explicit_matching_shards_takes_direct_install(
        self, tmp_path, rng
    ):
        """``shards=`` equal to the snapshot's own count is the same
        layout: restore must install the per-shard sets directly
        (preserving shard epochs) rather than rebuilding from the cube."""
        config = _config(tmp_path)
        with OLAPServer(_cube(rng), shards=2, durability=config) as server:
            _mutate(server, rng, 3)
            server.reconfigure()  # bump per-shard epochs past zero
            server.snapshot()
            epochs = tuple(server._state.materialized.epochs)
            expected = _answers(server)
        with OLAPServer.restore(config, shards=2) as restored:
            assert restored.shards == 2
            assert tuple(restored._state.materialized.epochs) == epochs
            assert _answers(restored) == expected

    @pytest.mark.parametrize("target_shards", [1, 4])
    def test_sharded_restore_onto_different_shard_count(
        self, tmp_path, rng, target_shards
    ):
        config = _config(tmp_path)
        with OLAPServer(_cube(rng), shards=2, durability=config) as server:
            _mutate(server, rng, 5)
            server.snapshot()
            _mutate(server, rng, 2)
            expected = _answers(server)
        with OLAPServer.restore(config, shards=target_shards) as restored:
            assert restored.shards == target_shards
            assert _answers(restored) == expected

    def test_restore_survives_staging_debris(self, tmp_path, rng):
        config = _config(tmp_path)
        with OLAPServer(_cube(rng), durability=config) as server:
            _mutate(server, rng, 3)
            expected = _answers(server)
        debris = config.snapshot_dir / ".staging-snap-crashed"
        debris.mkdir()
        (debris / "cube.npz").write_bytes(b"half-written")
        with OLAPServer.restore(config) as restored:
            assert _answers(restored) == expected


class TestApplyFailure:
    def test_failed_apply_does_not_advance_applied_seq(self, tmp_path, rng):
        """If the in-memory apply raises after the WAL append, the record
        must not count as applied: a snapshot taken afterwards would
        otherwise claim coverage of (and prune) state that was never
        absorbed."""
        config = _config(tmp_path)
        with OLAPServer(_cube(rng), durability=config) as server:
            _mutate(server, rng, 2)
            state = server._state
            original = state.materialized.apply_updates

            def exploding(*args, **kwargs):
                raise RuntimeError("apply exploded")

            state.materialized.apply_updates = exploding
            try:
                with pytest.raises(RuntimeError, match="apply exploded"):
                    server.update(1.0, d0=0, d1=0, d2=0)
            finally:
                state.materialized.apply_updates = original
            assert server._wal.last_seq == 3  # write-ahead happened
            assert server._applied_seq == 2  # but it was never applied
            server.snapshot()
            # The unapplied record stays replayable past the snapshot.
            assert [
                r.seq
                for r in server._wal.replay(after_seq=server._snapshot_seq)
            ] == [3]


class TestSnapshotterOrdering:
    def test_restore_starts_snapshotter_only_after_replay(
        self, tmp_path, rng, monkeypatch
    ):
        """A snapshot fired before WAL replay completes would record
        coverage of unapplied records and prune them; restore must not
        start the background snapshotter until replay is done."""
        config = _config(tmp_path, snapshot_interval_s=3600.0)
        with OLAPServer(_cube(rng), durability=config) as server:
            assert server._snapshot_thread is not None
            _mutate(server, rng, 3)
        calls = []
        orig_replay = OLAPServer._replay_wal
        orig_start = OLAPServer.start_snapshotter
        monkeypatch.setattr(
            OLAPServer,
            "_replay_wal",
            lambda self, *a, **k: (
                calls.append("replay"),
                orig_replay(self, *a, **k),
            )[-1],
        )
        monkeypatch.setattr(
            OLAPServer,
            "start_snapshotter",
            lambda self, *a, **k: (
                calls.append("snapshotter"),
                orig_start(self, *a, **k),
            )[-1],
        )
        with OLAPServer.restore(config) as restored:
            assert calls == ["replay", "snapshotter"]
            assert restored._snapshot_thread is not None
            assert restored._applied_seq == 3


class TestHousekeeping:
    def test_snapshot_prunes_covered_wal_segments(self, tmp_path, rng):
        config = _config(tmp_path, segment_bytes=256)
        with OLAPServer(_cube(rng), durability=config) as server:
            _mutate(server, rng, 10)
            assert len(server._wal.segments()) > 1
            server.snapshot()
            assert len(server._wal.segments()) == 1
            assert server.health()["durability"]["replay_lag"] == 0

    def test_retain_snapshots(self, tmp_path, rng):
        config = _config(tmp_path, retain_snapshots=2)
        with OLAPServer(_cube(rng), durability=config) as server:
            for _ in range(3):
                _mutate(server, rng, 1)
                server.snapshot()
            assert len(list_snapshots(config.snapshot_dir)) == 2

    def test_export_snapshot_leaves_lineage_alone(self, tmp_path, rng):
        config = _config(tmp_path, segment_bytes=256)
        with OLAPServer(_cube(rng), durability=config) as server:
            _mutate(server, rng, 8)
            segments = len(server._wal.segments())
            taken = server._snapshots_taken
            export = server.snapshot(tmp_path / "export")
            assert export.parent == tmp_path / "export"
            assert len(server._wal.segments()) == segments
            assert server._snapshots_taken == taken

    def test_health_reports_durability(self, tmp_path, rng):
        config = _config(tmp_path)
        with OLAPServer(_cube(rng), durability=config) as server:
            _mutate(server, rng, 3)
            section = server.health()["durability"]
            assert section["applied_seq"] == 3
            assert section["replay_lag"] == 3
            assert section["wal"]["last_seq"] == 3
            assert section["snapshots_taken"] == 1
            assert section["snapshot_age_s"] >= 0
            assert section["fsync"] == "off"
        plain = OLAPServer(_cube(rng))
        assert "durability" not in plain.health()


class TestEvents:
    def test_rotation_snapshot_and_replay_events(self, tmp_path, rng):
        config = _config(tmp_path, segment_bytes=256)
        with OLAPServer(_cube(rng), durability=config) as server:
            _mutate(server, rng, 10)
            server.snapshot()
            events = server.obs.events
            assert events.events("wal_rotated")
            taken = events.events("snapshot_taken")
            assert taken and taken[-1]["last_seq"] == 10
        with OLAPServer.restore(config) as restored:
            replayed = restored.obs.events.events("recovery_replayed")
            assert len(replayed) == 1
            assert replayed[0]["records"] == 0  # snapshot covered everything
            assert replayed[0]["to_seq"] == 10
