"""Tests for the plain-text reporting helpers."""

from __future__ import annotations

import pytest

from repro.reporting import ascii_plot, ascii_table, format_number


class TestFormatNumber:
    def test_ints_with_separators(self):
        assert format_number(923521) == "923,521"

    def test_floats_trimmed(self):
        assert format_number(0.5381, precision=3) == "0.538"
        assert format_number(3.0) == "3"

    def test_nan(self):
        assert format_number(float("nan")) == "nan"

    def test_bool_and_str(self):
        assert format_number(True) == "True"
        assert format_number("x") == "x"


class TestAsciiTable:
    def test_alignment_and_title(self):
        rendered = ascii_table(
            ["name", "value"],
            [["a", 1], ["bb", 22]],
            title="T",
        )
        lines = rendered.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_empty_rows(self):
        rendered = ascii_table(["h"], [])
        assert "h" in rendered


class TestAsciiPlot:
    def test_markers_and_bounds(self):
        rendered = ascii_plot(
            {"A": [(0, 0), (1, 1)], "B": [(0, 1), (1, 0)]},
            width=20,
            height=5,
        )
        assert "*=A" in rendered and "o=B" in rendered
        assert "*" in rendered and "o" in rendered

    def test_single_point(self):
        rendered = ascii_plot({"A": [(2.0, 3.0)]}, width=10, height=4)
        assert "*" in rendered

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="no points"):
            ascii_plot({"A": []})
