"""Tests for query populations (paper §5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.element import CubeShape
from repro.core.population import QueryPopulation


class TestValidation:
    def test_length_mismatch(self, shape_4x4):
        views = tuple(shape_4x4.aggregated_views())
        with pytest.raises(ValueError, match="differ in length"):
            QueryPopulation(views, (1.0,))

    def test_empty(self):
        with pytest.raises(ValueError, match="at least one query"):
            QueryPopulation((), ())

    def test_negative_frequency(self, shape_4x4):
        views = tuple(shape_4x4.aggregated_views())[:2]
        with pytest.raises(ValueError, match="non-negative"):
            QueryPopulation(views, (1.5, -0.5))

    def test_zero_total(self, shape_4x4):
        views = tuple(shape_4x4.aggregated_views())[:2]
        with pytest.raises(ValueError, match="positive sum"):
            QueryPopulation(views, (0.0, 0.0))

    def test_mixed_shapes(self, shape_4x4):
        other = CubeShape((8, 8)).root()
        with pytest.raises(ValueError, match="same cube shape"):
            QueryPopulation((shape_4x4.root(), other), (0.5, 0.5))


class TestNormalization:
    def test_auto_normalizes(self, shape_4x4):
        views = tuple(shape_4x4.aggregated_views())[:2]
        population = QueryPopulation(views, (2.0, 6.0))
        assert population.frequencies == pytest.approx((0.25, 0.75))

    def test_already_normalized_untouched(self, shape_4x4):
        views = tuple(shape_4x4.aggregated_views())[:2]
        population = QueryPopulation(views, (0.25, 0.75))
        assert population.frequencies == (0.25, 0.75)


class TestConstructors:
    def test_uniform(self, shape_4x4):
        population = QueryPopulation.uniform_over_views(shape_4x4)
        assert len(population) == 4
        assert all(f == pytest.approx(0.25) for _, f in population)

    def test_random_seeded(self, shape_4x4):
        a = QueryPopulation.random_over_views(shape_4x4, np.random.default_rng(1))
        b = QueryPopulation.random_over_views(shape_4x4, np.random.default_rng(1))
        assert a.frequencies == b.frequencies
        assert sum(a.frequencies) == pytest.approx(1.0)

    def test_random_excluding_root(self, shape_4x4):
        population = QueryPopulation.random_over_views(
            shape_4x4, np.random.default_rng(1), include_root=False
        )
        assert len(population) == 3
        assert all(not q.is_root for q, _ in population)

    def test_random_concentration_validation(self, shape_4x4):
        with pytest.raises(ValueError, match="concentration"):
            QueryPopulation.random_over_views(
                shape_4x4, np.random.default_rng(1), concentration=0.0
            )

    def test_random_concentration_skews(self, shape_4x4):
        rng = np.random.default_rng(2)
        population = QueryPopulation.random_over_views(
            shape_4x4, rng, concentration=0.05
        )
        assert max(population.frequencies) > 0.8  # strongly skewed

    def test_point_mass(self, shape_4x4):
        views = list(shape_4x4.aggregated_views())
        population = QueryPopulation.point_mass(views, hot=[1, 2])
        assert population.frequencies == pytest.approx((0.0, 0.5, 0.5, 0.0))

    def test_point_mass_requires_hot(self, shape_4x4):
        with pytest.raises(ValueError, match="at least one query"):
            QueryPopulation.point_mass(list(shape_4x4.aggregated_views()), hot=[])


class TestAccessors:
    def test_frequency_of(self, shape_4x4):
        views = list(shape_4x4.aggregated_views())
        population = QueryPopulation.from_pairs([(views[0], 0.4), (views[1], 0.6)])
        assert population.frequency_of(views[0]) == pytest.approx(0.4)
        assert population.frequency_of(views[3]) == 0.0

    def test_is_aggregated_view_population(self, shape_4x4):
        population = QueryPopulation.uniform_over_views(shape_4x4)
        assert population.is_aggregated_view_population()
        element = shape_4x4.root().partial_child(0)
        mixed = QueryPopulation.from_pairs([(element, 1.0)])
        assert not mixed.is_aggregated_view_population()

    def test_restricted_to_support(self, shape_4x4):
        views = list(shape_4x4.aggregated_views())
        population = QueryPopulation(
            tuple(views), (0.5, 0.0, 0.5, 0.0)
        ).restricted_to_support()
        assert len(population) == 2
        assert all(f > 0 for _, f in population)
