"""Tests for the MOLAP substrate: dimensions, cubes, builders, sparse."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.element import CubeShape
from repro.cube import (
    DataCube,
    Dimension,
    DimensionSet,
    SparseCube,
    all_views,
    build_cube,
    cube_from_columns,
    next_power_of_two,
    view_element_of,
    view_sizes,
)
from repro.core.operators import OpCounter


class TestNextPowerOfTwo:
    @pytest.mark.parametrize(
        "n,expected", [(0, 1), (1, 1), (2, 2), (3, 4), (5, 8), (8, 8), (9, 16)]
    )
    def test_values(self, n, expected):
        assert next_power_of_two(n) == expected


class TestDimension:
    def test_encode_decode(self):
        dim = Dimension("city", ["ams", "ber", "cph"])
        assert dim.cardinality == 3
        assert dim.size == 4  # padded
        assert dim.padded_slots == 1
        assert dim.encode("ber") == 1
        assert dim.decode(1) == "ber"
        assert dim.decode(3) is None  # padding slot

    def test_encode_many(self):
        dim = Dimension("x", [10, 20])
        np.testing.assert_array_equal(
            dim.encode_many([20, 10, 20]), [1, 0, 1]
        )

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Dimension("x", [1, 1])

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty domain"):
            Dimension("x", [])

    def test_unpadded_requires_power_of_two(self):
        with pytest.raises(ValueError, match="power of two"):
            Dimension("x", [1, 2, 3], pad_to_power_of_two=False)

    def test_decode_out_of_range(self):
        dim = Dimension("x", [1, 2])
        with pytest.raises(IndexError):
            dim.decode(2)


class TestDimensionSet:
    def test_axis_lookup(self):
        dims = DimensionSet([Dimension("a", [1, 2]), Dimension("b", [3, 4])])
        assert dims.axis_of("b") == 1
        assert dims.axes_of(["b", "a"]) == (1, 0)
        assert dims["a"].name == "a"
        assert dims[1].name == "b"

    def test_unknown_name(self):
        dims = DimensionSet([Dimension("a", [1, 2])])
        with pytest.raises(KeyError, match="unknown dimension"):
            dims.axis_of("z")

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            DimensionSet([Dimension("a", [1]), Dimension("a", [2])])


class TestDataCube:
    @pytest.fixture
    def cube(self, rng) -> DataCube:
        dims = [
            Dimension("p", ["p0", "p1", "p2", "p3"]),
            Dimension("s", ["s0", "s1"]),
        ]
        values = rng.integers(0, 10, size=(4, 2)).astype(float)
        return DataCube(values, dims, measure="sales")

    def test_shape_id(self, cube):
        assert cube.shape_id == CubeShape((4, 2))
        assert cube.volume == 8

    def test_view_matches_numpy(self, cube):
        np.testing.assert_array_equal(
            cube.view(["p"]), cube.values.sum(axis=0, keepdims=True)
        )

    def test_view_cost_counted(self, cube):
        counter = OpCounter()
        cube.view(["p", "s"], counter=counter)
        assert counter.total == cube.volume - 1

    def test_cell_and_slice(self, cube):
        assert cube.cell(p="p2", s="s1") == cube.values[2, 1]
        np.testing.assert_array_equal(cube.slice(s="s0"), cube.values[:, 0])

    def test_cell_missing_coordinate(self, cube):
        with pytest.raises(KeyError, match="missing coordinate"):
            cube.cell(p="p0")

    def test_cell_unknown_dimension(self, cube):
        with pytest.raises(KeyError, match="unknown dimensions"):
            cube.cell(p="p0", s="s0", z=1)

    def test_values_shape_checked(self):
        with pytest.raises(ValueError, match="does not match"):
            DataCube(np.zeros((4, 4)), [Dimension("a", [1, 2])])

    def test_to_records_round_trip(self):
        dims = [Dimension("a", ["x", "y"]), Dimension("b", [0, 1])]
        values = np.array([[1.0, 0.0], [0.0, 2.0]])
        cube = DataCube(values, dims, measure="m")
        records = cube.to_records()
        assert len(records) == 2
        rebuilt = build_cube(records, ["a", "b"], "m")
        np.testing.assert_array_equal(rebuilt.values[:2, :2], values)

    def test_density(self, cube):
        assert 0.0 <= cube.density <= 1.0


class TestBuilder:
    def test_accumulates_duplicates(self):
        records = [
            {"a": "x", "m": 1.0},
            {"a": "x", "m": 2.5},
            {"a": "y", "m": 4.0},
        ]
        cube = build_cube(records, ["a"], "m")
        assert cube.cell(a="x") == 3.5
        assert cube.cell(a="y") == 4.0

    def test_padding_to_power_of_two(self):
        records = [{"a": v, "m": 1.0} for v in "abc"]
        cube = build_cube(records, ["a"], "m")
        assert cube.values.shape == (4,)
        assert cube.total() == 3.0

    def test_explicit_domains(self):
        records = [{"day": 3, "m": 1.0}]
        cube = build_cube(
            records, ["day"], "m", domains={"day": list(range(8))}
        )
        assert cube.values.shape == (8,)
        assert cube.values[3] == 1.0

    def test_missing_measure(self):
        with pytest.raises(KeyError, match="missing measure"):
            build_cube([{"a": 1}], ["a"], "m")

    def test_missing_dimension(self):
        with pytest.raises(KeyError, match="missing dimension"):
            build_cube([{"m": 1.0}], ["a"], "m")

    def test_empty_records(self):
        with pytest.raises(ValueError, match="at least one record"):
            build_cube([], ["a"], "m")

    def test_column_length_mismatch(self):
        with pytest.raises(ValueError, match="rows"):
            cube_from_columns({"a": [1, 2]}, [1.0])


class TestAllViews:
    def test_lattice_matches_numpy(self, rng):
        dims = [
            Dimension("a", list(range(4))),
            Dimension("b", list(range(2))),
            Dimension("c", list(range(2))),
        ]
        values = rng.integers(0, 9, size=(4, 2, 2)).astype(float)
        cube = DataCube(values, dims)
        views = all_views(cube)
        assert len(views) == 8
        np.testing.assert_array_equal(
            views[frozenset({"a"})],
            values.sum(axis=(1, 2), keepdims=True),
        )
        assert views[frozenset()].item() == values.sum()

    def test_view_element_of(self):
        dims = [Dimension("a", [0, 1]), Dimension("b", [0, 1])]
        cube = DataCube(np.zeros((2, 2)), dims)
        element = view_element_of(cube, ["a"])
        assert element.aggregated_dims == (1,)  # b is aggregated out

    def test_view_element_of_unknown(self):
        dims = [Dimension("a", [0, 1])]
        cube = DataCube(np.zeros(2), dims)
        with pytest.raises(KeyError, match="unknown dimensions"):
            view_element_of(cube, ["z"])

    def test_view_sizes(self):
        dims = [Dimension("a", list(range(4))), Dimension("b", [0, 1])]
        cube = DataCube(np.zeros((4, 2)), dims)
        sizes = view_sizes(cube)
        assert sizes[frozenset({"a", "b"})] == 8
        assert sizes[frozenset({"a"})] == 4
        assert sizes[frozenset()] == 1


class TestSparseCube:
    def test_duplicates_combined(self):
        shape = CubeShape((4, 4))
        sparse = SparseCube(
            shape,
            np.array([[0, 0], [0, 0], [1, 2]]),
            np.array([1.0, 2.0, 5.0]),
        )
        assert sparse.nnz == 2
        dense = sparse.densify()
        assert dense[0, 0] == 3.0
        assert dense[1, 2] == 5.0

    def test_zero_entries_dropped(self):
        shape = CubeShape((2, 2))
        sparse = SparseCube(
            shape, np.array([[0, 0], [0, 0]]), np.array([1.0, -1.0])
        )
        assert sparse.nnz == 0

    def test_from_dense_round_trip(self, rng):
        shape = CubeShape((4, 4))
        dense = np.where(
            rng.random((4, 4)) < 0.3, rng.integers(1, 9, (4, 4)), 0
        ).astype(float)
        sparse = SparseCube.from_dense(dense)
        np.testing.assert_array_equal(sparse.densify(), dense)
        assert sparse.density == np.count_nonzero(dense) / 16

    def test_sparse_aggregation_matches_dense(self, rng):
        shape = CubeShape((4, 4, 2))
        dense = rng.integers(0, 5, size=shape.sizes).astype(float)
        sparse = SparseCube.from_dense(dense)
        np.testing.assert_array_equal(
            sparse.total_aggregate([0, 2]),
            dense.sum(axis=(0, 2), keepdims=True),
        )
        assert sparse.total() == dense.sum()

    def test_from_records(self):
        shape = CubeShape((2, 2))
        sparse = SparseCube.from_records(
            shape, [((0, 1), 2.0), ((1, 1), 3.0)]
        )
        assert sparse.densify()[0, 1] == 2.0
        assert sparse.memory_cells() == 2 * 3

    def test_coordinate_validation(self):
        shape = CubeShape((2, 2))
        with pytest.raises(ValueError, match="outside"):
            SparseCube(shape, np.array([[2, 0]]), np.array([1.0]))

    def test_empty(self):
        shape = CubeShape((2, 2))
        sparse = SparseCube.from_records(shape, [])
        assert sparse.nnz == 0
        assert sparse.densify().sum() == 0.0
