"""Tests for the multi-measure cube (SUM / COUNT / derived AVG)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cube import MeasureSetCube


@pytest.fixture
def records() -> list[dict]:
    return [
        {"product": "pen", "store": "A", "sales": 2.0},
        {"product": "pen", "store": "A", "sales": 4.0},
        {"product": "pen", "store": "B", "sales": 6.0},
        {"product": "ink", "store": "A", "sales": 10.0},
    ]


@pytest.fixture
def cube(records) -> MeasureSetCube:
    return MeasureSetCube.from_records(
        records, ["product", "store"], "sales"
    )


class TestConstruction:
    def test_aligned_dimensions(self, cube):
        assert cube.sum_cube.dimensions.names == cube.count_cube.dimensions.names
        assert cube.sum_cube.values.shape == cube.count_cube.values.shape

    def test_mismatched_cubes_rejected(self, cube):
        from repro.cube import DataCube, Dimension

        other = DataCube(np.zeros((2, 2)), [Dimension("x", [0, 1]), Dimension("y", [0, 1])])
        with pytest.raises(ValueError, match="share dimension"):
            MeasureSetCube(cube.sum_cube, other)


class TestCells:
    def test_sum_count_avg(self, cube):
        assert cube.cell("sum", product="pen", store="A") == 6.0
        assert cube.cell("count", product="pen", store="A") == 2.0
        assert cube.cell("avg", product="pen", store="A") == 3.0

    def test_avg_of_empty_cell_is_nan(self, cube):
        assert np.isnan(cube.cell("avg", product="ink", store="B"))

    def test_unknown_measure(self, cube):
        with pytest.raises(ValueError, match="unknown measure"):
            cube.cell("median", product="pen", store="A")


class TestViews:
    def test_sum_view(self, cube):
        view = cube.view("sum", ["store"])
        pen = cube.dimensions["product"].encode("pen")
        assert view[pen, 0] == pytest.approx(12.0)

    def test_count_view(self, cube):
        view = cube.view("count", ["product", "store"])
        assert view.item() == 4.0

    def test_avg_view(self, cube, records):
        view = cube.view("avg", ["store"])
        pen = cube.dimensions["product"].encode("pen")
        ink = cube.dimensions["product"].encode("ink")
        assert view[pen, 0] == pytest.approx(4.0)  # (2+4+6)/3
        assert view[ink, 0] == pytest.approx(10.0)

    def test_avg_nan_outside_support(self, cube):
        view = cube.view("avg", [])
        # Padding rows (if any) and empty cells must be NaN, not inf.
        counts = cube.count_cube.values
        assert np.isnan(view[counts == 0]).all()

    def test_unsupported_measure_raises(self, cube):
        with pytest.raises(ValueError, match="not distributive"):
            cube.view("max", ["store"])


class TestMaterializedServing:
    def test_views_served_from_materialized_sets(self, cube):
        shape = cube.sum_cube.shape_id
        elements = list(shape.aggregated_views())
        cube.materialize(elements)
        from repro.core.operators import OpCounter

        counter = OpCounter()
        view = cube.view("avg", ["store"], counter=counter)
        assert counter.total == 0  # both base views are stored reads
        pen = cube.dimensions["product"].encode("pen")
        assert view[pen, 0] == pytest.approx(4.0)
