"""Tests for the vectorized selection engine against the reference code."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.element import CubeShape
from repro.core.engine import SelectionEngine
from repro.core.graph import ViewElementGraph
from repro.core.population import QueryPopulation
from repro.core.select_basis import select_minimum_cost_basis
from repro.core.select_redundant import (
    generation_cost,
    greedy_redundant_selection,
    total_processing_cost,
)


@pytest.fixture(scope="module")
def engine_4x4():
    return SelectionEngine(CubeShape((4, 4)))


class TestIndexMapping:
    def test_round_trip(self, engine_4x4):
        for index in range(engine_4x4.num_nodes):
            element = engine_4x4.element_of(index)
            assert engine_4x4.index_of(element) == index


class TestCostAgreement:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        size=st.integers(min_value=1, max_value=8),
    )
    def test_node_costs_match_reference(self, engine_4x4, seed, size):
        """Engine T(V) equals the reference recursion on random selections."""
        shape = engine_4x4.shape
        graph = ViewElementGraph(shape)
        elements = list(graph.elements())
        rng = np.random.default_rng(seed)
        chosen = [elements[i] for i in rng.choice(len(elements), size=size, replace=False)]
        t_vals = engine_4x4.node_generation_costs(chosen)
        memo: dict = {}
        for probe in elements[:: max(1, len(elements) // 20)]:
            ref = generation_cost(probe, chosen, _memo=memo)
            got = float(t_vals[engine_4x4.index_of(probe)])
            if ref == float("inf"):
                assert not np.isfinite(got)
            else:
                assert got == pytest.approx(ref)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_total_cost_matches_reference(self, engine_4x4, seed):
        shape = engine_4x4.shape
        rng = np.random.default_rng(seed)
        population = QueryPopulation.random_over_views(shape, rng)
        basis = select_minimum_cost_basis(shape, population)
        ref = total_processing_cost(list(basis.elements), population)
        fast = engine_4x4.total_processing_cost(list(basis.elements), population)
        assert fast == pytest.approx(ref)

    def test_shape_mismatch(self, engine_4x4):
        other = CubeShape((8, 8))
        population = QueryPopulation.uniform_over_views(other)
        with pytest.raises(ValueError, match="different cube shape"):
            engine_4x4.total_processing_cost([other.root()], population)


class TestGreedyAgreement:
    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1_000))
    def test_matches_reference_greedy(self, seed):
        """Engine greedy and reference greedy take identical trajectories."""
        shape = CubeShape((2, 2))
        rng = np.random.default_rng(seed)
        population = QueryPopulation.random_over_views(shape, rng)
        basis = select_minimum_cost_basis(shape, population)
        budget = 2.0 * shape.volume
        engine = SelectionEngine(shape)
        ref = greedy_redundant_selection(
            list(basis.elements), population, storage_budget=budget
        )
        fast = engine.greedy_redundant_selection(
            list(basis.elements), population, storage_budget=budget
        )
        assert [s.cost for s in fast.stages] == pytest.approx(
            [s.cost for s in ref.stages]
        )
        assert [s.storage for s in fast.stages] == [
            s.storage for s in ref.stages
        ]

    def test_budget_respected(self, engine_4x4, rng):
        shape = engine_4x4.shape
        population = QueryPopulation.random_over_views(shape, rng)
        budget = 1.3 * shape.volume
        result = engine_4x4.greedy_redundant_selection(
            [shape.root()], population, storage_budget=budget
        )
        assert all(s.storage <= budget for s in result.stages)

    def test_max_stages(self, engine_4x4, rng):
        shape = engine_4x4.shape
        population = QueryPopulation.random_over_views(shape, rng)
        result = engine_4x4.greedy_redundant_selection(
            [shape.root()],
            population,
            storage_budget=3 * shape.volume,
            max_stages=2,
        )
        assert len(result.stages) <= 3

    def test_remove_obsolete_matches_reference(self):
        shape = CubeShape((2, 2))
        view = shape.aggregated_view([0])
        population = QueryPopulation.from_pairs([(view, 1.0)])
        start = list(shape.root().children(0))
        engine = SelectionEngine(shape)
        budget = shape.volume + view.volume
        ref = greedy_redundant_selection(
            start, population, storage_budget=budget, remove_obsolete=True
        )
        fast = engine.greedy_redundant_selection(
            start, population, storage_budget=budget, remove_obsolete=True
        )
        assert fast.final_cost == pytest.approx(ref.final_cost)
        assert fast.final_storage == ref.final_storage

    def test_stop_at_zero(self, engine_4x4, rng):
        shape = engine_4x4.shape
        population = QueryPopulation.random_over_views(shape, rng)
        views = list(shape.aggregated_views())
        result = engine_4x4.greedy_redundant_selection(
            views,  # everything already stored
            population,
            storage_budget=10 * shape.volume,
        )
        assert result.final_cost == 0.0
        assert len(result.stages) == 1


class TestChunkedCandidateEvaluation:
    def test_small_batch_cap_matches_unchunked(self, rng):
        """Chunked candidate totals equal the single-batch result."""
        shape = CubeShape((4, 4))
        population = QueryPopulation.random_over_views(shape, rng)
        basis = select_minimum_cost_basis(shape, population)
        budget = 1.5 * shape.volume

        wide = SelectionEngine(shape)
        narrow = SelectionEngine(shape)
        narrow.max_batch_cells = narrow.num_nodes * 3  # 3 candidates/chunk
        a = wide.greedy_redundant_selection(
            list(basis.elements), population, storage_budget=budget
        )
        b = narrow.greedy_redundant_selection(
            list(basis.elements), population, storage_budget=budget
        )
        assert [s.cost for s in a.stages] == pytest.approx(
            [s.cost for s in b.stages]
        )
        assert [s.storage for s in a.stages] == [s.storage for s in b.stages]
