"""Tests for the processing-cost model (paper §5.2, Eqs 26-29)."""

from __future__ import annotations

import pytest

from repro.core.costs import (
    aggregation_cost,
    basis_population_cost,
    element_population_cost,
    support_cost,
)
from repro.core.element import CubeShape, ElementId
from repro.core.population import QueryPopulation


class TestAggregationCost:
    def test_telescoped_sum(self):
        # Eq 28: sum of 2^j from log2(l) to log2(v)-1 equals v - l.
        assert aggregation_cost(16, 2) == 14
        assert aggregation_cost(8, 8) == 0

    def test_rejects_expansion(self):
        with pytest.raises(ValueError, match="cannot aggregate"):
            aggregation_cost(4, 8)


class TestSupportCost:
    def test_disjoint_is_zero(self, shape_4x4):
        p, r = shape_4x4.root().children(0)
        assert support_cost(p, r) == 0

    def test_identical_is_zero(self, shape_4x4):
        view = shape_4x4.aggregated_view([0])
        assert support_cost(view, view) == 0

    def test_ancestor_supports_descendant(self, shape_4x4):
        root = shape_4x4.root()
        view = shape_4x4.aggregated_view([0, 1])
        # Root (vol 16) aggregates down to the total (vol 1): 15 ops; the
        # query itself needs no further aggregation.
        assert support_cost(root, view) == 15
        assert support_cost(view, root) == 15  # symmetric by Eq 26

    def test_partial_overlap(self, shape_4x4):
        a = ElementId(shape_4x4, ((1, 0), (0, 0)))  # vol 8
        b = ElementId(shape_4x4, ((0, 0), (1, 0)))  # vol 8
        # Common descendant has vol 4; each side pays 8 - 4.
        assert support_cost(a, b) == 8

    def test_pedagogical_values(self, shape_2x2):
        """The §7.1 walk: V1 -> V2 costs 1; V0 -> V1 costs 2."""
        v0 = shape_2x2.root()
        v1 = ElementId(shape_2x2, ((1, 0), (0, 0)))
        v2 = ElementId(shape_2x2, ((1, 0), (1, 0)))
        assert support_cost(v0, v1) == 2
        assert support_cost(v1, v2) == 1


class TestPopulationCosts:
    def test_element_population_cost_weighting(self, shape_4x4):
        views = list(shape_4x4.aggregated_views())
        population = QueryPopulation.from_pairs(
            [(views[1], 0.25), (views[3], 0.75)]
        )
        root = shape_4x4.root()
        expected = 0.25 * support_cost(root, views[1]) + 0.75 * support_cost(
            root, views[3]
        )
        assert element_population_cost(root, population) == pytest.approx(expected)

    def test_zero_frequency_ignored(self, shape_4x4):
        views = list(shape_4x4.aggregated_views())
        population = QueryPopulation(
            (views[1], views[2]), (1.0, 0.0)
        )
        root = shape_4x4.root()
        assert element_population_cost(root, population) == pytest.approx(
            support_cost(root, views[1])
        )

    def test_basis_cost_additive(self, shape_4x4):
        population = QueryPopulation.uniform_over_views(shape_4x4)
        basis = list(shape_4x4.root().children(0))
        total = basis_population_cost(basis, population)
        assert total == pytest.approx(
            sum(element_population_cost(e, population) for e in basis)
        )

    def test_stored_query_is_free(self, shape_4x4):
        view = shape_4x4.aggregated_view([0])
        population = QueryPopulation.from_pairs([(view, 1.0)])
        assert element_population_cost(view, population) == 0.0
