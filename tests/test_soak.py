"""Soak subsystem: trace generation, harness, gate, and autotuner.

Small-cube, short-trace versions of everything ``python -m repro soak``
and ``python -m repro tune`` run at scale: seeded generation must be
replayable, the harness's report must carry the SLO/adaptation shape
the benchmark gates read, the differential gate must hold answers
bit-identical under tuning, and the autotuner must only ever emit valid
:class:`~repro.tuning.TuningConfig` profiles.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.soak import (
    OnlineTuner,
    SoakConfig,
    autotune,
    generate_soak_trace,
    load_soak_trace,
    measure_speedup,
    run_soak,
    run_soak_check,
    save_soak_trace,
    warm_start,
)
from repro.soak.autotune import THRESHOLD_HI, THRESHOLD_LO, _floor_quantiles
from repro.tuning import DEFAULT_TUNING, TuningConfig

#: Small enough to keep the whole module in CI seconds.
TINY = SoakConfig(
    sizes=(16, 8, 4),
    batches=12,
    phase_batches=4,
    batch_size=3,
    burst_every=4,
    burst_cells=8,
)


class TestTraceGeneration:
    def test_same_config_same_trace(self):
        assert generate_soak_trace(TINY) == generate_soak_trace(TINY)

    def test_seed_changes_trace(self):
        other = dataclasses.replace(TINY, seed=TINY.seed + 1)
        assert generate_soak_trace(TINY) != generate_soak_trace(other)

    def test_trace_structure(self):
        trace = generate_soak_trace(TINY)
        kinds = {op["op"] for op in trace}
        assert kinds <= {
            "drift",
            "ingest",
            "query_batch",
            "rollup_batch",
            "range",
        }
        drift_phases = [op["phase"] for op in trace if op["op"] == "drift"]
        assert drift_phases == sorted(drift_phases)
        assert len(drift_phases) == TINY.batches // TINY.phase_batches
        assert any(op["op"] == "ingest" for op in trace)

    def test_trace_round_trips_through_json(self, tmp_path):
        trace = generate_soak_trace(TINY)
        path = save_soak_trace(trace, tmp_path / "trace.json")
        assert load_soak_trace(path) == trace


class TestHarness:
    def test_report_shape(self):
        report = run_soak(TINY)
        assert report["queries"] > 0
        assert report["timed_batches"] > 0
        assert report["qps"] > 0
        for key in ("p50", "p95", "p99"):
            assert report["batch_ms"][key] >= 0
            assert report["assembly_ms"][key] >= 0
        assert report["assembly_ms"]["count"] > 0
        assert isinstance(report["drift"], list)
        assert isinstance(report["adaptation"]["reconfigurations"], list)
        assert report["online"]["enabled"] is False
        assert "assembly_walls" not in report

    def test_keep_walls_exposes_assembly_series(self):
        report = run_soak(TINY, keep_walls=True)
        walls = report["assembly_walls"]
        assert len(walls) == report["assembly_ms"]["count"]
        assert all(w >= 0 for w in walls)

    def test_tuning_profile_is_reported(self):
        tuned = TuningConfig(dispatch_threshold=THRESHOLD_HI)
        report = run_soak(TINY, tuning=tuned)
        assert report["tuning"] == tuned.to_dict()
        assert report["effective_tuning"] == tuned.to_dict()

    def test_gate_bit_identical_on_thread_backend(self):
        report = run_soak_check(TINY, backends=("thread",))
        assert report["ok"], report
        (run,) = report["runs"]
        assert run["bit_identical"]
        assert run["compared"] > 0


class TestAutotune:
    def test_emits_valid_config_and_audit_trail(self):
        best, report = autotune(TINY, trial_batches=4, warm=False)
        assert isinstance(best, TuningConfig)
        assert TuningConfig.from_dict(report["best"]) == best
        assert report["trials"], "search must log every trial"
        for trial in report["trials"]:
            assert trial["stage"] in (1, 2)
            assert trial["objective_ms"] >= 0
        assert report["best_objective_ms"] >= 0

    def test_warm_start_emits_valid_threshold(self):
        warmed = warm_start(TINY)
        assert THRESHOLD_LO <= warmed.dispatch_threshold <= THRESHOLD_HI
        assert warmed.dispatch_threshold & (warmed.dispatch_threshold - 1) == 0

    def test_measure_speedup_report_shape(self):
        tuned = TuningConfig(dispatch_threshold=THRESHOLD_HI)
        result = measure_speedup(TINY, tuned, repeats=2)
        for key in (
            "default_objective_ms",
            "tuned_objective_ms",
            "default_p99_ms",
            "tuned_p99_ms",
            "speedup",
            "p99_speedup",
        ):
            assert key in result
        assert result["speedup"] > 0
        assert result["p99_speedup"] > 0

    def test_floor_quantiles_strip_one_run_bursts(self):
        quiet = [1.0] * 100
        bursty = [1.0] * 100
        bursty[98] = 50.0  # a noise burst in one replay only
        q = _floor_quantiles([quiet, bursty])
        assert q["p99"] == pytest.approx(1.0)
        systematic = [2.0] * 100
        q = _floor_quantiles([systematic, [2.5] * 100])
        assert q["p99"] == pytest.approx(2.0)


class TestOnlineTuner:
    def test_nudges_are_recorded_and_clamped(self):
        tuner = OnlineTuner(window=2)
        nudges = []
        for wall in (1.0, 1.0, 5.0, 5.0, 9.0, 9.0, 2.0, 2.0):
            nudge = tuner.observe(wall)
            if nudge is not None:
                nudges.append(nudge)
        assert nudges, "worsening windows must produce nudges"
        for nudge in nudges:
            assert nudge["knob"] == "dispatch_threshold"
            assert THRESHOLD_LO <= nudge["new"] <= THRESHOLD_HI
            assert nudge["direction"] in ("up", "down")
        assert tuner.nudges == len(nudges)

    def test_overrides_track_current_value(self):
        base = TuningConfig(dispatch_threshold=1 << 16)
        tuner = OnlineTuner(base=base, window=2)
        assert tuner.overrides() == {"dispatch_threshold": 1 << 16}

    def test_window_must_hold_two_batches(self):
        with pytest.raises(ValueError):
            OnlineTuner(window=1)
