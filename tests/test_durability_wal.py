"""WAL edge cases: roundtrip, torn tails, duplicate sequences, rotation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.durability.wal import (
    WalRecord,
    WriteAheadLog,
    decode_record,
    encode_record,
    verify_contiguous,
)
from repro.errors import IntegrityError, TransientFault
from repro.resilience.faults import FaultInjector, FaultRule


def _batch(rng: np.random.Generator, n: int = 3, d: int = 3):
    coords = rng.integers(0, 8, size=(n, d)).astype(np.int64)
    deltas = rng.integers(-9, 10, size=n).astype(np.float64)
    return coords, deltas


# ----------------------------------------------------------------------
# Record codec


@st.composite
def record_args(draw):
    n = draw(st.integers(min_value=0, max_value=6))
    d = draw(st.integers(min_value=1, max_value=4))
    seq = draw(st.integers(min_value=0, max_value=2**63 - 1))
    epoch = draw(st.integers(min_value=0, max_value=2**32 - 1))
    coords = draw(
        st.lists(
            st.lists(
                st.integers(min_value=-(2**40), max_value=2**40),
                min_size=d,
                max_size=d,
            ),
            min_size=n,
            max_size=n,
        )
    )
    deltas = draw(
        st.lists(
            st.floats(allow_nan=False, width=64), min_size=n, max_size=n
        )
    )
    return seq, epoch, np.array(coords, dtype=np.int64).reshape(n, d), np.array(
        deltas, dtype=np.float64
    )


class TestRecordCodec:
    @given(record_args())
    @settings(max_examples=100)
    def test_roundtrip(self, args):
        seq, epoch, coords, deltas = args
        blob = encode_record(seq, epoch, coords, deltas)
        decoded = decode_record(blob)
        assert decoded is not None
        record, consumed = decoded
        assert consumed == len(blob)
        assert record == WalRecord(seq, epoch, coords, deltas)

    @given(record_args(), st.data())
    @settings(max_examples=60)
    def test_truncation_at_any_offset_decodes_to_none(self, args, data):
        blob = encode_record(*args)
        cut = data.draw(st.integers(min_value=0, max_value=len(blob) - 1))
        assert decode_record(blob[:cut]) is None

    @given(record_args(), st.data())
    @settings(max_examples=60)
    def test_single_byte_corruption_never_yields_wrong_record(
        self, args, data
    ):
        seq, epoch, coords, deltas = args
        blob = bytearray(encode_record(seq, epoch, coords, deltas))
        index = data.draw(
            st.integers(min_value=0, max_value=len(blob) - 1)
        )
        blob[index] ^= data.draw(st.integers(min_value=1, max_value=255))
        decoded = decode_record(bytes(blob))
        # Either the damage is detected (None) or — only when the flip
        # landed in the *length* header and still frames a checksummed
        # payload, which CRC-32 makes effectively impossible — the record
        # must equal the original.  Wrong data must never decode.
        if decoded is not None:
            record, _ = decoded
            assert record == WalRecord(seq, epoch, coords, deltas)

    def test_record_unhashable_but_comparable(self, rng):
        coords, deltas = _batch(rng)
        record = WalRecord(1, 0, coords, deltas)
        assert record == WalRecord(1, 0, coords.copy(), deltas.copy())
        assert record != WalRecord(2, 0, coords, deltas)
        # ndarray fields make a field-based hash impossible; the class
        # must be cleanly unhashable, not blow up inside a dataclass
        # generated __hash__.
        with pytest.raises(TypeError, match="unhashable"):
            hash(record)

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="coordinates"):
            encode_record(1, 0, np.zeros(3, dtype=np.int64), np.zeros(3))
        with pytest.raises(ValueError, match="deltas"):
            encode_record(
                1, 0, np.zeros((3, 2), dtype=np.int64), np.zeros(2)
            )


# ----------------------------------------------------------------------
# Append / replay


class TestAppendReplay:
    def test_sequences_monotonic_and_replayable(self, tmp_path, rng):
        wal = WriteAheadLog(tmp_path, fsync="off")
        batches = []
        for _ in range(5):
            coords, deltas = _batch(rng)
            seq = wal.append(coords, deltas, epoch=2)
            batches.append((seq, coords, deltas))
        assert [seq for seq, _, _ in batches] == [1, 2, 3, 4, 5]
        assert wal.last_seq == 5
        replayed = list(wal.replay())
        assert [r.seq for r in replayed] == [1, 2, 3, 4, 5]
        for record, (_, coords, deltas) in zip(replayed, batches):
            assert record.epoch == 2
            np.testing.assert_array_equal(record.coordinates, coords)
            np.testing.assert_array_equal(record.deltas, deltas)
        verify_contiguous(replayed)
        wal.close()

    def test_replay_after_seq_skips_prefix(self, tmp_path, rng):
        wal = WriteAheadLog(tmp_path, fsync="off")
        for _ in range(4):
            wal.append(*_batch(rng))
        assert [r.seq for r in wal.replay(after_seq=2)] == [3, 4]
        wal.close()

    def test_fsync_policies(self, tmp_path, rng):
        for policy in ("always", "interval", "off"):
            wal = WriteAheadLog(tmp_path / policy, fsync=policy)
            wal.append(*_batch(rng))
            wal.sync()
            wal.close()
        with pytest.raises(ValueError, match="fsync"):
            WriteAheadLog(tmp_path / "bad", fsync="sometimes")

    def test_reopen_continues_sequence(self, tmp_path, rng):
        wal = WriteAheadLog(tmp_path, fsync="off")
        wal.append(*_batch(rng))
        wal.append(*_batch(rng))
        wal.close()
        reopened = WriteAheadLog(tmp_path, fsync="off")
        assert reopened.last_seq == 2
        assert reopened.append(*_batch(rng)) == 3
        reopened.close()


# ----------------------------------------------------------------------
# Torn tails


class TestTornTail:
    def test_truncation_at_every_byte_offset(self, tmp_path, rng):
        """Chop the segment at *every* byte: replay always yields a clean
        prefix of the original records — never garbage, never an error."""
        wal = WriteAheadLog(tmp_path, fsync="off")
        originals = []
        for _ in range(3):
            coords, deltas = _batch(rng, n=2)
            seq = wal.append(coords, deltas)
            originals.append((seq, coords.tobytes(), deltas.tobytes()))
        wal.close()
        (segment,) = list(tmp_path.glob("wal-*.seg"))
        raw = segment.read_bytes()
        for cut in range(len(raw)):
            torn_dir = tmp_path / f"cut-{cut}"
            torn_dir.mkdir()
            (torn_dir / segment.name).write_bytes(raw[:cut])
            reopened = WriteAheadLog(torn_dir, fsync="off")
            replayed = [
                (r.seq, r.coordinates.tobytes(), r.deltas.tobytes())
                for r in reopened.replay()
            ]
            assert replayed == originals[: len(replayed)]
            # Recovery truncated the tear: appending continues cleanly.
            next_seq = reopened.append(
                np.zeros((1, 3), dtype=np.int64), np.ones(1)
            )
            assert next_seq == len(replayed) + 1
            reopened.close()
            # And the post-recovery append is itself durable: a *second*
            # recovery (e.g. the tear hit the segment header, so the
            # first one truncated to zero bytes) must still replay it.
            final = WriteAheadLog(torn_dir, fsync="off")
            assert final.last_seq == next_seq
            assert [r.seq for r in final.replay()] == list(
                range(1, next_seq + 1)
            )
            final.close()

    def test_torn_tail_counted(self, tmp_path, rng):
        wal = WriteAheadLog(tmp_path, fsync="off")
        wal.append(*_batch(rng))
        wal.close()
        (segment,) = list(tmp_path.glob("wal-*.seg"))
        raw = segment.read_bytes()
        segment.write_bytes(raw[:-3])
        reopened = WriteAheadLog(tmp_path, fsync="off")
        assert reopened.stats()["torn_discarded"] == 1
        assert reopened.last_seq == 0
        reopened.close()

    @pytest.mark.parametrize("debris", [b"", b"REPROWA", b"REPROWAL\x01"])
    def test_torn_rotation_header_not_a_data_sink(self, tmp_path, rng, debris):
        """A crash during rotation's header write leaves a tail segment
        with a missing or partial header.  Recovery must rewrite the
        header — a headerless tail would swallow every later append,
        which the *next* recovery would then silently discard."""
        wal = WriteAheadLog(tmp_path, fsync="off")
        for _ in range(3):
            wal.append(*_batch(rng))
        wal.close()
        (tmp_path / "wal-00000000000000000004.seg").write_bytes(debris)
        reopened = WriteAheadLog(tmp_path, fsync="off")
        # The empty tail still anchors the sequence at its start - 1.
        assert reopened.last_seq == 3
        assert reopened.append(*_batch(rng)) == 4
        reopened.close()
        final = WriteAheadLog(tmp_path, fsync="off")
        assert final.last_seq == 4
        assert [r.seq for r in final.replay()] == [1, 2, 3, 4]
        final.close()

    def test_failed_append_truncates_and_log_survives(self, tmp_path, rng):
        wal = WriteAheadLog(tmp_path, fsync="off")
        wal.append(*_batch(rng))
        injector = FaultInjector(
            [FaultRule(site="wal.append", kind="error", max_fires=1)]
        )
        with injector.activate():
            with pytest.raises(TransientFault):
                wal.append(*_batch(rng))
            # The torn half-record was rolled back: the next append gets
            # the failed record's sequence number and replays cleanly.
            assert wal.append(*_batch(rng)) == 2
        assert [r.seq for r in wal.replay()] == [1, 2]
        wal.close()


# ----------------------------------------------------------------------
# Duplicates / rotation / prune


class TestSegments:
    def test_duplicate_sequences_replay_once(self, tmp_path, rng):
        wal = WriteAheadLog(tmp_path, fsync="off")
        coords, deltas = _batch(rng)
        for _ in range(3):
            wal.append(coords, deltas)
        wal.close()
        # Duplicate the whole segment under a later start: overlapping
        # sequence ranges on disk.
        (segment,) = list(tmp_path.glob("wal-*.seg"))
        dup = tmp_path / "wal-00000000000000000002.seg"
        dup.write_bytes(segment.read_bytes())
        reopened = WriteAheadLog(tmp_path, fsync="off")
        assert [r.seq for r in reopened.replay()] == [1, 2, 3]
        reopened.close()

    def test_rotation_and_prune(self, tmp_path, rng):
        wal = WriteAheadLog(tmp_path, fsync="off", segment_bytes=256)
        for _ in range(10):
            wal.append(*_batch(rng))
        assert wal.stats()["rotations"] > 0
        segments_before = len(wal.segments())
        assert segments_before > 1
        removed = wal.prune(wal.last_seq)
        # Everything but the active segment is covered and removable.
        assert removed >= 1
        assert len(wal.segments()) == segments_before - removed
        assert len(wal.segments()) >= 1
        assert [r.seq for r in wal.replay(after_seq=wal.last_seq)] == []
        # Records in surviving segments still replay.
        surviving = list(wal.replay())
        assert surviving and surviving[-1].seq == wal.last_seq
        wal.close()

    def test_prune_keeps_uncovered_segments(self, tmp_path, rng):
        wal = WriteAheadLog(tmp_path, fsync="off", segment_bytes=256)
        for _ in range(10):
            wal.append(*_batch(rng))
        last = wal.last_seq
        wal.prune(2)
        assert [r.seq for r in wal.replay(after_seq=2)] == list(
            range(3, last + 1)
        )
        wal.close()

    def test_verify_contiguous_raises_on_gap(self):
        records = [
            WalRecord(1, 0, np.zeros((0, 1), dtype=np.int64), np.zeros(0)),
            WalRecord(3, 0, np.zeros((0, 1), dtype=np.int64), np.zeros(0)),
        ]
        with pytest.raises(IntegrityError, match="gap"):
            verify_contiguous(records)
