"""Reduced run of the kill-and-recover chaos gate.

The full gate (``repro recover``) exercises ~20 SIGKILL points across
1/2/4-shard layouts; here a trimmed configuration keeps the spawn-based
children cheap enough for the tier-1 suite while still covering a real
mid-append kill, a mid-snapshot kill, and a clean shutdown.
"""

from __future__ import annotations

from repro.durability.gate import (
    RecoveryGateConfig,
    render_report,
    run_recovery_gate,
)


def test_reduced_gate_passes(tmp_path):
    config = RecoveryGateConfig(
        seed=11,
        shard_counts=(1,),
        operations=20,
        snapshot_every=4,
        wal_kills=1,
        snapshot_kills=1,
        include_clean=True,
        cross_restore=False,
        segment_bytes=1024,
    )
    report = run_recovery_gate(config, workdir=tmp_path)
    assert report["ok"], render_report(report)
    assert report["kill_points"] >= 2
    for scenario in report["scenarios"]:
        for restore in scenario["restores"]:
            assert restore["lost_acked"] == 0
            assert restore["unacked_tail"] <= 1
            assert restore["compared"] > 0
            assert restore["mismatches"] == []
    killed = [s for s in report["scenarios"] if s["killed"]]
    clean = [s for s in report["scenarios"] if not s["killed"]]
    assert killed and clean
