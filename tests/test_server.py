"""Tests for the high-level OLAP server facade."""

from __future__ import annotations

import numpy as np
import pytest

from repro.server import OLAPServer
from repro.workloads import SalesConfig, generate_sales_records


@pytest.fixture
def records() -> list[dict]:
    return generate_sales_records(
        SalesConfig(num_transactions=400, num_days=8, seed=19)
    )


@pytest.fixture
def server(records) -> OLAPServer:
    return OLAPServer.from_records(
        records,
        ["product", "store", "day"],
        "sales",
        domains={"day": list(range(8))},
    )


class TestQueries:
    def test_view_matches_numpy(self, server):
        view = server.view(["store"])
        axis_p = server.cube.dimensions.axis_of("product")
        axis_d = server.cube.dimensions.axis_of("day")
        np.testing.assert_allclose(
            view,
            server.cube.values.sum(axis=(axis_p, axis_d), keepdims=True),
        )

    def test_unknown_dimension(self, server):
        with pytest.raises(KeyError, match="unknown dimensions"):
            server.view(["bogus"])

    def test_range_sum(self, server):
        shape = server.shape
        full = tuple((0, n) for n in shape.sizes)
        assert server.range_sum(full) == pytest.approx(
            server.cube.values.sum()
        )

    def test_rollup(self, server):
        day_axis = server.cube.dimensions.axis_of("day")
        rolled = server.rollup({"day": 3})
        np.testing.assert_allclose(
            rolled.sum(), server.cube.values.sum()
        )
        assert rolled.shape[day_axis] == 1

    def test_stats_accumulate(self, server):
        server.view(["store"])
        server.view(["product"])
        assert server.stats.queries == 2
        assert server.stats.operations > 0
        assert server.stats.operations_per_query > 0


class TestReconfiguration:
    def test_reconfigure_for_hot_view(self, server):
        for _ in range(10):
            server.view(["product"])
        storage, expected = server.reconfigure()
        assert storage == server.shape.volume  # non-redundant basis
        assert server.stats.reconfigurations == 1
        # Hot view now served as a stored read.
        before = server.stats.operations
        server.view(["product"])
        assert server.stats.operations == before

    def test_reconfigure_with_budget(self, records):
        server = OLAPServer.from_records(
            records,
            ["product", "store", "day"],
            "sales",
            domains={"day": list(range(8))},
            storage_budget=int(1.5 * 8 * 4 * 8),
        )
        for _ in range(5):
            server.view(["store"])
            server.view(["day"])
        storage, expected = server.reconfigure()
        assert storage <= server.storage_budget
        # Answers stay exact after reconfiguration.
        view = server.view(["day"])
        axes = tuple(
            server.cube.dimensions.axis_of(n) for n in ("product", "store")
        )
        np.testing.assert_allclose(
            view, server.cube.values.sum(axis=axes, keepdims=True), atol=1e-9
        )

    def test_range_queries_after_reconfigure(self, server):
        server.view(["product"])
        server.reconfigure()
        shape = server.shape
        assert server.range_sum(
            tuple((0, n) for n in shape.sizes)
        ) == pytest.approx(server.cube.values.sum())


class TestResultCache:
    def test_cached_answer_bit_identical_to_cold(self, server):
        cold = server.view(["store"]).copy()
        hits = server.metrics.get("view_cache_hits_total")
        assert hits.value() == 0
        warm = server.view(["store"])
        assert hits.value() == 1
        # Bit-identical, not just approximately equal.
        assert warm.shape == cold.shape
        assert np.ascontiguousarray(warm).tobytes() == cold.tobytes()

    def test_cache_hit_costs_zero_operations(self, server):
        server.view(["product"])
        before = server.stats.operations
        server.view(["product"])
        assert server.stats.operations == before
        assert server.stats.queries == 2  # hits still count as queries

    def test_reconfigure_invalidates_cache(self, server):
        server.view(["store"])
        server.view(["store"])
        hits = server.metrics.get("view_cache_hits_total")
        misses = server.metrics.get("view_cache_misses_total")
        epoch_gauge = server.metrics.get("server_epoch")
        assert (hits.value(), misses.value()) == (1, 1)
        assert epoch_gauge.value() == 0

        server.reconfigure()
        # Epoch bump observed through the metrics registry.
        assert epoch_gauge.value() == 1
        assert server.epoch == 1

        # Same query: a fresh miss at the new epoch, then a hit again —
        # and the answer still matches the raw cube.
        view = server.view(["store"])
        assert misses.value() == 2
        server.view(["store"])
        assert hits.value() == 2
        axes = tuple(
            server.cube.dimensions.axis_of(n) for n in ("product", "day")
        )
        np.testing.assert_allclose(
            view, server.cube.values.sum(axis=axes, keepdims=True), atol=1e-9
        )

    def test_update_invalidates_cache(self, server):
        product = server.cube.dimensions["product"].values[0]
        store = server.cube.dimensions["store"].values[0]
        stale = server.view(["store"]).copy()
        server.update(5.0, product=product, store=store, day=0)
        fresh = server.view(["store"])
        assert not np.array_equal(fresh, stale)
        axes = tuple(
            server.cube.dimensions.axis_of(n) for n in ("product", "day")
        )
        np.testing.assert_allclose(
            fresh, server.cube.values.sum(axis=axes, keepdims=True)
        )

    def test_lru_bound_evicts(self, records):
        server = OLAPServer.from_records(
            records,
            ["product", "store", "day"],
            "sales",
            domains={"day": list(range(8))},
            cache_entries=1,
        )
        server.view(["store"])
        server.view(["product"])  # evicts the "store" entry
        assert server.metrics.get("view_cache_evictions_total").value() == 1
        assert len(server._view_cache) == 1

    def test_traced_query_exposes_spans(self, server):
        server.view(["store"])
        server.view(["store"])
        spans = server.tracer.spans("server.query")
        assert [s.attributes["cache"] for s in spans] == ["miss", "hit"]
        assert spans[0].attributes["operations"] > 0
        assert spans[1].attributes["operations"] == 0
        # The cold query produced nested assembly spans with op counts.
        assembly = server.tracer.spans("materialize.assemble")
        assert assembly and all(
            "operations" in s.attributes for s in assembly
        )


class TestIncrementalUpdates:
    def test_update_initial_state(self, server):
        product = server.cube.dimensions["product"].values[0]
        store = server.cube.dimensions["store"].values[0]
        before = server.cell(product=product, store=store, day=0)
        server.update(5.0, product=product, store=store, day=0)
        assert server.cell(product=product, store=store, day=0) == pytest.approx(
            before + 5.0
        )
        # Views reflect the update (retaining store/day sums out product).
        view = server.view(["store", "day"])
        axis_p = server.cube.dimensions.axis_of("product")
        np.testing.assert_allclose(
            view,
            server.cube.values.sum(axis=axis_p, keepdims=True),
        )

    def test_update_after_reconfigure(self, server):
        server.view(["product"])
        server.reconfigure()
        product = server.cube.dimensions["product"].values[1]
        store = server.cube.dimensions["store"].values[1]
        server.update(7.0, product=product, store=store, day=3)
        view = server.view(["store", "day"])
        axis_p = server.cube.dimensions.axis_of("product")
        np.testing.assert_allclose(
            view,
            server.cube.values.sum(axis=axis_p, keepdims=True),
            atol=1e-9,
        )


class TestObservedPopulation:
    def test_smoothing_keeps_all_views(self, server):
        server.view(["store"])
        population = server.observed_population()
        assert len(population) == server.shape.num_aggregated_views()
        hot = max(population.frequencies)
        assert hot > 1.0 / len(population)

    def test_reconfigure_with_explicit_population(self, server):
        from repro.core.population import QueryPopulation

        population = QueryPopulation.uniform_over_views(server.shape)
        storage, expected = server.reconfigure(population)
        assert storage == server.shape.volume
        assert expected >= 0.0
