"""Tests for the high-level OLAP server facade."""

from __future__ import annotations

import numpy as np
import pytest

from repro.server import OLAPServer
from repro.workloads import SalesConfig, generate_sales_records


@pytest.fixture
def records() -> list[dict]:
    return generate_sales_records(
        SalesConfig(num_transactions=400, num_days=8, seed=19)
    )


@pytest.fixture
def server(records) -> OLAPServer:
    return OLAPServer.from_records(
        records,
        ["product", "store", "day"],
        "sales",
        domains={"day": list(range(8))},
    )


class TestQueries:
    def test_view_matches_numpy(self, server):
        view = server.view(["store"])
        axis_p = server.cube.dimensions.axis_of("product")
        axis_d = server.cube.dimensions.axis_of("day")
        np.testing.assert_allclose(
            view,
            server.cube.values.sum(axis=(axis_p, axis_d), keepdims=True),
        )

    def test_unknown_dimension(self, server):
        with pytest.raises(KeyError, match="unknown dimensions"):
            server.view(["bogus"])

    def test_range_sum(self, server):
        shape = server.shape
        full = tuple((0, n) for n in shape.sizes)
        assert server.range_sum(full) == pytest.approx(
            server.cube.values.sum()
        )

    def test_rollup(self, server):
        day_axis = server.cube.dimensions.axis_of("day")
        rolled = server.rollup({"day": 3})
        np.testing.assert_allclose(
            rolled.sum(), server.cube.values.sum()
        )
        assert rolled.shape[day_axis] == 1

    def test_stats_accumulate(self, server):
        server.view(["store"])
        server.view(["product"])
        assert server.stats.queries == 2
        assert server.stats.operations > 0
        assert server.stats.operations_per_query > 0


class TestReconfiguration:
    def test_reconfigure_for_hot_view(self, server):
        for _ in range(10):
            server.view(["product"])
        storage, expected = server.reconfigure()
        assert storage == server.shape.volume  # non-redundant basis
        assert server.stats.reconfigurations == 1
        # Hot view now served as a stored read.
        before = server.stats.operations
        server.view(["product"])
        assert server.stats.operations == before

    def test_reconfigure_with_budget(self, records):
        server = OLAPServer.from_records(
            records,
            ["product", "store", "day"],
            "sales",
            domains={"day": list(range(8))},
            storage_budget=int(1.5 * 8 * 4 * 8),
        )
        for _ in range(5):
            server.view(["store"])
            server.view(["day"])
        storage, expected = server.reconfigure()
        assert storage <= server.storage_budget
        # Answers stay exact after reconfiguration.
        view = server.view(["day"])
        axes = tuple(
            server.cube.dimensions.axis_of(n) for n in ("product", "store")
        )
        np.testing.assert_allclose(
            view, server.cube.values.sum(axis=axes, keepdims=True), atol=1e-9
        )

    def test_range_queries_after_reconfigure(self, server):
        server.view(["product"])
        server.reconfigure()
        shape = server.shape
        assert server.range_sum(
            tuple((0, n) for n in shape.sizes)
        ) == pytest.approx(server.cube.values.sum())


class TestIncrementalUpdates:
    def test_update_initial_state(self, server):
        product = server.cube.dimensions["product"].values[0]
        store = server.cube.dimensions["store"].values[0]
        before = server.cell(product=product, store=store, day=0)
        server.update(5.0, product=product, store=store, day=0)
        assert server.cell(product=product, store=store, day=0) == pytest.approx(
            before + 5.0
        )
        # Views reflect the update (retaining store/day sums out product).
        view = server.view(["store", "day"])
        axis_p = server.cube.dimensions.axis_of("product")
        np.testing.assert_allclose(
            view,
            server.cube.values.sum(axis=axis_p, keepdims=True),
        )

    def test_update_after_reconfigure(self, server):
        server.view(["product"])
        server.reconfigure()
        product = server.cube.dimensions["product"].values[1]
        store = server.cube.dimensions["store"].values[1]
        server.update(7.0, product=product, store=store, day=3)
        view = server.view(["store", "day"])
        axis_p = server.cube.dimensions.axis_of("product")
        np.testing.assert_allclose(
            view,
            server.cube.values.sum(axis=axis_p, keepdims=True),
            atol=1e-9,
        )


class TestObservedPopulation:
    def test_smoothing_keeps_all_views(self, server):
        server.view(["store"])
        population = server.observed_population()
        assert len(population) == server.shape.num_aggregated_views()
        hot = max(population.frequencies)
        assert hot > 1.0 / len(population)

    def test_reconfigure_with_explicit_population(self, server):
        from repro.core.population import QueryPopulation

        population = QueryPopulation.uniform_over_views(server.shape)
        storage, expected = server.reconfigure(population)
        assert storage == server.shape.volume
        assert expected >= 0.0
