"""Server-level resilience: deadlines, admission, retries, degradation."""

import threading

import numpy as np
import pytest

from repro.cube.datacube import DataCube
from repro.cube.dimensions import Dimension
from repro.errors import AdmissionRejected, QueryTimeout, TransientFault
from repro.resilience import FaultInjector, FaultRule
from repro.server import OLAPServer


def _make_server(seed=11, sizes=(8, 8), **kwargs):
    rng = np.random.default_rng(seed)
    values = rng.integers(0, 100, size=sizes).astype(np.float64)
    dims = [Dimension(f"d{i}", list(range(n))) for i, n in enumerate(sizes)]
    return OLAPServer(DataCube(values, dims, measure="amount"), **kwargs)


class TestDeadlines:
    def test_ten_ms_deadline_raises_query_timeout(self):
        server = _make_server(max_in_flight=1, max_retries=0)
        stall = FaultInjector(
            [
                FaultRule(
                    site="materialize.assemble",
                    kind="latency",
                    latency_ms=50.0,
                )
            ],
            seed=1,
        )
        with stall.activate():
            with pytest.raises(QueryTimeout):
                server.view(["d0"], deadline_ms=10.0)
        assert (
            server.metrics.counter("server_timeouts_total").total() == 1
        )

    def test_timeout_frees_the_admission_slot(self):
        server = _make_server(max_in_flight=1, max_retries=0)
        stall = FaultInjector(
            [
                FaultRule(
                    site="materialize.assemble",
                    kind="latency",
                    latency_ms=50.0,
                )
            ],
            seed=1,
        )
        with stall.activate():
            with pytest.raises(QueryTimeout):
                server.view(["d0"], deadline_ms=10.0)
        # The slot must be back: this acquires it again and succeeds.
        result = server.view(["d0"])
        assert np.array_equal(result, _make_server().view(["d0"]))

    def test_default_deadline_applies_when_call_passes_none(self):
        server = _make_server(default_deadline_ms=10.0, max_retries=0)
        stall = FaultInjector(
            [
                FaultRule(
                    site="materialize.assemble",
                    kind="latency",
                    latency_ms=50.0,
                )
            ],
            seed=1,
        )
        with stall.activate():
            with pytest.raises(QueryTimeout):
                server.view(["d0"])

    def test_generous_deadline_does_not_interfere(self):
        server = _make_server()
        plain = _make_server()
        assert np.array_equal(
            server.view(["d0"], deadline_ms=60_000), plain.view(["d0"])
        )

    def test_batch_deadline_raises_query_timeout(self):
        server = _make_server(max_retries=0)
        stall = FaultInjector(
            [
                FaultRule(
                    site="materialize.assemble",
                    kind="latency",
                    latency_ms=50.0,
                )
            ],
            seed=1,
        )
        with stall.activate():
            with pytest.raises(QueryTimeout):
                server.query_batch([["d0"], ["d1"]], deadline_ms=10.0)


class TestAdmission:
    def test_fail_fast_rejects_at_capacity(self):
        server = _make_server(max_in_flight=1)
        entered = threading.Event()
        release = threading.Event()

        slow = FaultInjector(
            [
                FaultRule(
                    site="materialize.assemble",
                    kind="latency",
                    latency_ms=0.0,
                )
            ],
            seed=1,
        )

        def hold_slot():
            # Hold the only slot by serving a query that blocks in the
            # assembly fault site until released.
            original_hit = slow.hit

            def blocking_hit(site, **ctx):
                entered.set()
                release.wait(timeout=5)
                original_hit(site, **ctx)

            slow.hit = blocking_hit
            with slow.activate():
                server.view(["d0"])

        worker = threading.Thread(target=hold_slot)
        worker.start()
        try:
            assert entered.wait(timeout=5)
            with pytest.raises(AdmissionRejected) as excinfo:
                server.view(["d1"])
            assert excinfo.value.limit == 1
        finally:
            release.set()
            worker.join(timeout=5)
        assert (
            server.metrics.counter("server_admission_rejected_total").total()
            == 1
        )
        # The slot drains: a later query is admitted.
        server.view(["d1"])

    def test_unbounded_server_never_rejects(self):
        server = _make_server()
        for _ in range(5):
            server.view(["d0"])
        assert (
            server.metrics.counter("server_admission_rejected_total").total()
            == 0
        )


class TestRetries:
    def test_transient_faults_are_retried_to_the_right_answer(self):
        expected = _make_server().view(["d0"])
        server = _make_server(max_retries=3)
        flaky = FaultInjector(
            [
                FaultRule(
                    site="materialize.assemble",
                    kind="error",
                    probability=1.0,
                    max_fires=2,
                )
            ],
            seed=1,
        )
        with flaky.activate():
            result = server.view(["d0"])
        assert np.array_equal(result, expected)
        assert server.metrics.counter("server_retries_total").total() == 2

    def test_retry_budget_exhaustion_raises(self):
        server = _make_server(max_retries=1)
        broken = FaultInjector(
            [
                FaultRule(
                    site="materialize.assemble",
                    kind="error",
                    probability=1.0,
                )
            ],
            seed=1,
        )
        with broken.activate():
            with pytest.raises(TransientFault):
                server.view(["d0"])

    def test_cache_fault_degrades_to_a_recompute(self):
        expected = _make_server().view(["d0"])
        server = _make_server()
        server.view(["d0"])  # populate the cache
        cache_fault = FaultInjector(
            [
                FaultRule(
                    site="server.cache_lookup",
                    kind="error",
                    probability=1.0,
                )
            ],
            seed=1,
        )
        with cache_fault.activate():
            result = server.view(["d0"])
        assert np.array_equal(result, expected)
        assert (
            server.metrics.counter("server_cache_bypass_total").total() >= 1
        )


class TestDegradation:
    def test_quarantine_reroutes_bit_identically(self):
        server = _make_server()
        server.reconfigure()  # a multi-element selection
        reference = _make_server()
        reference.reconfigure()
        victim = server.materialized.elements[0]
        server.materialized._arrays[victim].reshape(-1)[0] += 1e6
        for retained in ([], ["d0"], ["d1"], ["d0", "d1"]):
            assert np.array_equal(
                server.view(retained), reference.view(retained)
            ), retained
        assert victim in server.materialized.quarantined
        assert (
            server.metrics.counter("integrity_failures_total").total() >= 1
        )

    def test_degrade_to_base_answers_with_an_empty_surviving_set(self):
        server = _make_server()
        expected = _make_server().view(["d0"])
        # Quarantine the only stored element (the root): nothing survives.
        root = server.shape.root()
        server.materialized.quarantine(root, reason="test")
        result = server.view(["d0"])
        assert np.array_equal(result, expected)
        assert server.metrics.counter("server_degraded_total").total() >= 1

    def test_degrade_disabled_raises_incomplete_set(self):
        server = _make_server(degrade_to_base=False)
        server.materialized.quarantine(server.shape.root(), reason="test")
        with pytest.raises(ValueError):
            server.view(["d0"])

    def test_range_sum_degrades_to_direct_scan(self):
        server = _make_server()
        expected = _make_server().range_sum(((1, 7), (2, 5)))
        server.materialized.quarantine(server.shape.root(), reason="test")
        assert server.range_sum(((1, 7), (2, 5))) == expected


class TestHealth:
    def test_healthy_server_reports_ok(self):
        server = _make_server(max_in_flight=4)
        server.view(["d0"])
        health = server.health()
        assert health["status"] == "ok"
        assert health["quarantined_elements"] == 0
        assert health["max_in_flight"] == 4
        assert health["queries"] == 1
        assert health["in_flight"] == 0

    def test_quarantine_flips_status_to_degraded(self):
        server = _make_server()
        server.materialized.quarantine(server.shape.root(), reason="test")
        health = server.health()
        assert health["status"] == "degraded"
        assert health["quarantined_elements"] == 1
        assert health["quarantined"]  # names the element

    def test_health_counts_timeouts(self):
        server = _make_server(max_retries=0)
        stall = FaultInjector(
            [
                FaultRule(
                    site="materialize.assemble",
                    kind="latency",
                    latency_ms=50.0,
                )
            ],
            seed=1,
        )
        with stall.activate():
            with pytest.raises(QueryTimeout):
                server.view(["d0"], deadline_ms=10.0)
        assert server.health()["timeouts"] == 1
