"""Unit tests for the view-element identifier algebra (paper §3-4)."""

from __future__ import annotations

import pytest

from repro.core.element import CubeShape, ElementId


class TestCubeShape:
    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError, match="not a power of two"):
            CubeShape((4, 6))

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one dimension"):
            CubeShape(())

    def test_basic_properties(self):
        shape = CubeShape((8, 4, 2))
        assert shape.ndim == 3
        assert shape.depths == (3, 2, 1)
        assert shape.volume == 64
        assert len(shape) == 3
        assert list(shape) == [8, 4, 2]

    def test_counting_formulas(self):
        shape = CubeShape((4, 4))
        assert shape.num_view_elements() == 49  # (2*4-1)^2
        assert shape.num_aggregated_views() == 4
        assert shape.num_intermediate_elements() == 9  # (log2(4)+1)^2
        assert shape.num_residual_elements() == 40
        assert shape.num_blocks() == 9

    def test_aggregated_views_enumeration(self):
        shape = CubeShape((4, 4))
        views = list(shape.aggregated_views())
        assert len(views) == 4
        assert views[0].is_root
        assert views[-1] == shape.total_aggregation()
        assert all(v.is_aggregated_view for v in views)

    def test_aggregated_view_unknown_dim(self):
        with pytest.raises(ValueError, match="unknown dimensions"):
            CubeShape((4, 4)).aggregated_view([2])


class TestElementValidation:
    def test_level_out_of_range(self):
        shape = CubeShape((4,))
        with pytest.raises(ValueError, match="level"):
            ElementId(shape, ((3, 0),))

    def test_index_out_of_range(self):
        shape = CubeShape((4,))
        with pytest.raises(ValueError, match="index"):
            ElementId(shape, ((1, 2),))

    def test_wrong_arity(self):
        shape = CubeShape((4, 4))
        with pytest.raises(ValueError, match="dimension nodes"):
            ElementId(shape, ((0, 0),))


class TestClassification:
    """Definitions 1-4 of the paper."""

    def test_root(self, shape_4x4):
        root = shape_4x4.root()
        assert root.is_root
        assert root.is_intermediate
        assert not root.is_residual
        assert root.is_aggregated_view

    def test_intermediate_vs_residual(self, shape_4x4):
        inter = ElementId(shape_4x4, ((1, 0), (2, 0)))
        resid = ElementId(shape_4x4, ((1, 0), (2, 1)))
        assert inter.is_intermediate and not inter.is_residual
        assert resid.is_residual and not resid.is_intermediate

    def test_aggregated_views_are_full_depth_or_untouched(self, shape_4x4):
        partial = ElementId(shape_4x4, ((1, 0), (0, 0)))
        assert not partial.is_aggregated_view  # level 1 of depth 2
        view = ElementId(shape_4x4, ((2, 0), (0, 0)))
        assert view.is_aggregated_view
        assert view.aggregated_dims == (0,)

    def test_counts_over_enumeration(self, shape_3d):
        from repro.core.graph import ViewElementGraph

        graph = ViewElementGraph(shape_3d)
        elements = list(graph.elements())
        assert len(elements) == shape_3d.num_view_elements()
        assert (
            sum(1 for e in elements if e.is_aggregated_view)
            == shape_3d.num_aggregated_views()
        )
        assert (
            sum(1 for e in elements if e.is_intermediate)
            == shape_3d.num_intermediate_elements()
        )


class TestGraphStructure:
    def test_children_encoding(self, shape_4x4):
        root = shape_4x4.root()
        p = root.partial_child(0)
        r = root.residual_child(0)
        assert p.nodes == ((1, 0), (0, 0))
        assert r.nodes == ((1, 1), (0, 0))
        assert root.children(0) == (p, r)

    def test_parent_inverts_children(self, shape_4x4):
        root = shape_4x4.root()
        for dim in (0, 1):
            for child in root.children(dim):
                assert child.parent(dim) == root

    def test_split_exhaustion(self):
        shape = CubeShape((2, 4))
        terminal = ElementId(shape, ((1, 0), (2, 3)))
        assert terminal.is_terminal
        assert terminal.splittable_dims() == ()
        with pytest.raises(ValueError, match="fully aggregated"):
            terminal.partial_child(0)

    def test_parent_of_undecomposed_dim(self, shape_4x4):
        with pytest.raises(ValueError, match="no parent"):
            shape_4x4.root().parent(0)

    def test_parents_lists_each_decomposed_dim(self, shape_4x4):
        element = ElementId(shape_4x4, ((1, 1), (2, 2)))
        parents = element.parents()
        assert len(parents) == 2
        assert parents[0].nodes == ((0, 0), (2, 2))
        assert parents[1].nodes == ((1, 1), (1, 1))

    def test_path_notation(self):
        shape = CubeShape((8,))
        # index 5 = binary 101 -> R, P, R applied in that order.
        element = ElementId(shape, ((3, 5),))
        assert element.path(0) == "RPR"
        assert element.describe() == "RPR"

    def test_depth(self, shape_4x4):
        assert shape_4x4.root().depth == 0
        assert ElementId(shape_4x4, ((2, 1), (1, 0))).depth == 3


class TestGeometry:
    def test_data_shape_and_volume(self):
        shape = CubeShape((8, 4))
        element = ElementId(shape, ((2, 1), (1, 0)))
        assert element.data_shape == (2, 2)
        assert element.volume == 4
        assert element.log2_volume == 2

    def test_frequency_rectangle(self):
        shape = CubeShape((8, 4))
        element = ElementId(shape, ((2, 3), (0, 0)))
        assert element.frequency_rectangle() == ((0.75, 0.25), (0.0, 1.0))

    def test_frequency_volume(self, shape_4x4):
        root = shape_4x4.root()
        assert root.frequency_volume() == 1.0
        child = root.partial_child(0)
        assert child.frequency_volume() == 0.5


class TestContainmentAndIntersection:
    """Eqs 24-25 via dyadic interval nesting."""

    def test_contains_descendants_only(self, shape_4x4):
        root = shape_4x4.root()
        p = root.partial_child(0)
        pp = p.partial_child(0)
        pr = p.residual_child(0)
        assert root.contains(p) and root.contains(pp)
        assert p.contains(pp) and p.contains(pr)
        assert not pp.contains(p)
        assert not pr.contains(pp)

    def test_self_containment(self, shape_4x4):
        e = ElementId(shape_4x4, ((1, 1), (1, 0)))
        assert e.contains(e)
        assert e.intersects(e)
        assert e.intersection(e) == e

    def test_disjoint_siblings(self, shape_4x4):
        root = shape_4x4.root()
        p, r = root.children(0)
        assert not p.intersects(r)
        assert p.intersection(r) is None

    def test_intersection_is_deeper_node_per_dim(self, shape_4x4):
        a = ElementId(shape_4x4, ((1, 0), (0, 0)))  # P|.
        b = ElementId(shape_4x4, ((0, 0), (1, 0)))  # .|P
        common = a.intersection(b)
        assert common is not None
        assert common.nodes == ((1, 0), (1, 0))
        # Per dimension the overlap keeps the smaller extent: 2 x 2 cells.
        assert common.data_shape == (2, 2)
        assert common.volume == 4

    def test_cross_shape_rejected(self):
        a = CubeShape((4, 4)).root()
        b = CubeShape((8, 8)).root()
        with pytest.raises(ValueError, match="different shapes"):
            a.contains(b)

    def test_pairwise_consistency_sample(self, shape_4x4):
        """intersects == (intersection is not None) for all element pairs."""
        from repro.core.graph import ViewElementGraph

        elements = list(ViewElementGraph(shape_4x4).elements())
        for a in elements[::5]:
            for b in elements[::7]:
                hit = a.intersects(b)
                common = a.intersection(b)
                assert hit == (common is not None)
                if hit:
                    assert a.contains(common) and b.contains(common)
