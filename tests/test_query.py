"""Tests for the textual OLAP query language."""

from __future__ import annotations

import numpy as np
import pytest

from repro.query import execute, parse_query
from repro.relational import group_by_sum_dict
from repro.server import OLAPServer
from repro.workloads import SalesConfig, generate_sales_records, sales_table


@pytest.fixture(scope="module")
def records() -> list[dict]:
    return generate_sales_records(
        SalesConfig(num_transactions=300, num_days=8, seed=41)
    )


@pytest.fixture(scope="module")
def server(records) -> OLAPServer:
    return OLAPServer.from_records(
        records,
        ["product", "store", "day"],
        "sales",
        domains={"day": list(range(8))},
    )


class TestParser:
    def test_grand_total(self):
        query = parse_query("SUM")
        assert query.group_by == ()
        assert not query.has_predicates

    def test_measure_and_group_by(self):
        query = parse_query("SUM sales BY product, store")
        assert query.measure == "sales"
        assert query.group_by == ("product", "store")

    def test_where_equality_and_range(self):
        query = parse_query(
            "SUM BY store WHERE product = 'pen' AND day IN [0, 4)"
        )
        assert query.equals == (("product", "pen"),)
        assert query.ranges == (("day", 0, 4),)

    def test_bare_token_value(self):
        query = parse_query("SUM WHERE store = S01")
        assert query.equals == (("store", "S01"),)

    def test_integer_value(self):
        query = parse_query("SUM WHERE day = 3")
        assert query.equals == (("day", 3),)

    def test_case_insensitive_keywords(self):
        query = parse_query("sum by product where day in [1, 3)")
        assert query.group_by == ("product",)
        assert query.ranges == (("day", 1, 3),)

    @pytest.mark.parametrize(
        "bad",
        [
            "SELECT *",
            "SUM BY",
            "SUM WHERE day",
            "SUM WHERE day IN [1, )",
            "SUM BY product extra",
            "SUM WHERE day ~ 3",
        ],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_query(bad)


class TestExecution:
    def test_grand_total(self, server):
        result = execute(server, "SUM")
        assert result[()] == pytest.approx(server.cube.values.sum())

    def test_group_by_matches_relational(self, server, records):
        from repro.relational import Schema, Table

        schema = Schema.star(["product", "store", "day"], ["sales"])
        table = Table.from_records(schema, records)
        expected = group_by_sum_dict(table, ["product"], "sales")
        result = execute(server, "SUM BY product")
        for (product,), total in expected.items():
            assert result[(product,)] == pytest.approx(total)

    def test_equality_predicate(self, server, records):
        store = server.cube.dimensions["store"].values[0]
        result = execute(server, f"SUM WHERE store = '{store}'")
        expected = sum(
            r["sales"] for r in records if r["store"] == store
        )
        assert result[()] == pytest.approx(expected)

    def test_range_predicate(self, server, records):
        result = execute(server, "SUM WHERE day IN [2, 6)")
        expected = sum(r["sales"] for r in records if 2 <= r["day"] < 6)
        assert result[()] == pytest.approx(expected)

    def test_combined_query(self, server, records):
        product = server.cube.dimensions["product"].values[0]
        result = execute(
            server,
            f"SUM BY store WHERE product = '{product}' AND day IN [0, 4)",
        )
        for store in server.cube.dimensions["store"].values:
            expected = sum(
                r["sales"]
                for r in records
                if r["product"] == product
                and r["store"] == store
                and r["day"] < 4
            )
            assert result[(store,)] == pytest.approx(expected)

    def test_unknown_measure(self, server):
        with pytest.raises(KeyError, match="unknown measure"):
            execute(server, "SUM revenue BY product")

    def test_unknown_dimension(self, server):
        with pytest.raises(KeyError):
            execute(server, "SUM BY bogus")

    def test_by_and_where_conflict(self, server):
        with pytest.raises(ValueError, match="both BY and WHERE"):
            execute(server, "SUM BY day WHERE day IN [0, 2)")

    def test_duplicate_predicates(self, server):
        with pytest.raises(ValueError, match="multiple predicates"):
            execute(server, "SUM WHERE day IN [0, 2) AND day IN [2, 4)")

    def test_range_bounds_checked(self, server):
        with pytest.raises(ValueError, match="outside"):
            execute(server, "SUM WHERE day IN [0, 99)")


class TestParserProperties:
    """Property-style checks on the query grammar."""

    def test_round_trip_through_rendering(self, server):
        """A parsed query re-rendered from its parts parses identically."""
        from repro.query import parse_query

        originals = [
            "SUM",
            "SUM BY product",
            "SUM BY product, store",
            "SUM sales BY day",
            "SUM WHERE day IN [1, 5)",
            "SUM BY store WHERE day IN [0, 8)",
        ]
        for text in originals:
            parsed = parse_query(text)
            rebuilt = "SUM"
            if parsed.measure:
                rebuilt += f" {parsed.measure}"
            if parsed.group_by:
                rebuilt += " BY " + ", ".join(parsed.group_by)
            predicates = [
                f"{dim} IN [{lo}, {hi})" for dim, lo, hi in parsed.ranges
            ] + [f"{dim} = {value}" for dim, value in parsed.equals]
            if predicates:
                rebuilt += " WHERE " + " AND ".join(predicates)
            assert parse_query(rebuilt) == parsed

    def test_whitespace_insensitive(self):
        from repro.query import parse_query

        a = parse_query("SUM   BY product ,  store")
        b = parse_query("SUM BY product, store")
        assert a == b

    def test_grand_total_equals_sum_of_any_groupby(self, server):
        total = execute(server, "SUM")[()]
        for by in ("product", "store", "day"):
            grouped = execute(server, f"SUM BY {by}")
            assert sum(grouped.values()) == pytest.approx(total)
