"""Tests for the synthetic workload and data generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.element import CubeShape
from repro.workloads import (
    SalesConfig,
    aligned_range,
    drifting_populations,
    generate_sales_records,
    hot_subset_population,
    random_range,
    random_ranges,
    random_view_population,
    sales_cube,
    sales_table,
    zipf_view_population,
)


class TestFrequencyGenerators:
    def test_random_population_normalized(self, shape_4x4, rng):
        population = random_view_population(shape_4x4, rng)
        assert sum(population.frequencies) == pytest.approx(1.0)
        assert len(population) == 4

    def test_zipf_skew_increases_with_exponent(self, shape_3d):
        rng = np.random.default_rng(0)
        flat = zipf_view_population(shape_3d, exponent=0.0, rng=rng)
        rng = np.random.default_rng(0)
        steep = zipf_view_population(shape_3d, exponent=3.0, rng=rng)
        assert max(steep.frequencies) > max(flat.frequencies)
        assert all(
            f == pytest.approx(1 / len(flat)) for f in flat.frequencies
        )

    def test_zipf_exponent_validation(self, shape_4x4):
        with pytest.raises(ValueError, match="non-negative"):
            zipf_view_population(shape_4x4, exponent=-1.0)

    def test_hot_subset(self, shape_4x4):
        views = list(shape_4x4.aggregated_views())
        population = hot_subset_population(shape_4x4, views[:2], hot_mass=0.8)
        assert population.frequency_of(views[0]) == pytest.approx(0.4)
        assert population.frequency_of(views[3]) == pytest.approx(0.1)

    def test_hot_subset_full_mass(self, shape_4x4):
        views = list(shape_4x4.aggregated_views())
        population = hot_subset_population(shape_4x4, [views[1]], hot_mass=1.0)
        assert len(population) == 1

    def test_hot_subset_validation(self, shape_4x4):
        with pytest.raises(ValueError, match="hot_mass"):
            hot_subset_population(shape_4x4, [shape_4x4.root()], hot_mass=0.0)
        with pytest.raises(ValueError, match="at least one hot view"):
            hot_subset_population(shape_4x4, [])

    def test_drifting_phases(self, shape_3d):
        phases = drifting_populations(shape_3d, 4, np.random.default_rng(1))
        assert len(phases) == 4
        for phase in phases:
            assert sum(phase.frequencies) == pytest.approx(1.0)

    def test_drifting_validation(self, shape_3d):
        with pytest.raises(ValueError, match="at least one phase"):
            drifting_populations(shape_3d, 0)


class TestRangeGenerators:
    def test_random_range_valid(self, shape_3d):
        rng = np.random.default_rng(2)
        for _ in range(50):
            ranges = random_range(shape_3d, rng)
            for (lo, hi), n in zip(ranges, shape_3d.sizes):
                assert 0 <= lo < hi <= n

    def test_random_ranges_count(self, shape_3d):
        assert len(random_ranges(shape_3d, 7, np.random.default_rng(3))) == 7

    def test_aligned_range(self, shape_3d):
        rng = np.random.default_rng(4)
        ranges = aligned_range(shape_3d, level=1, rng=rng)
        for (lo, hi), n in zip(ranges, shape_3d.sizes):
            block = min(2, n)
            assert hi - lo == block
            assert lo % block == 0


class TestSalesGenerator:
    def test_reproducible(self):
        a = generate_sales_records(SalesConfig(num_transactions=50, seed=3))
        b = generate_sales_records(SalesConfig(num_transactions=50, seed=3))
        assert a == b

    def test_record_fields(self):
        records = generate_sales_records(SalesConfig(num_transactions=10))
        for record in records:
            assert set(record) == {"product", "store", "customer", "day", "sales"}
            assert record["sales"] > 0

    def test_config_validation(self):
        with pytest.raises(ValueError, match="positive"):
            SalesConfig(num_transactions=0)

    def test_table_and_cube_agree(self):
        config = SalesConfig(num_transactions=300, seed=5)
        table = sales_table(config)
        cube = sales_cube(config)
        assert cube.total() == pytest.approx(
            float(np.sum(table.column("sales")))
        )

    def test_cube_day_domain_is_dense(self):
        config = SalesConfig(num_transactions=20, num_days=16, seed=6)
        cube = sales_cube(config)
        day_dim = cube.dimensions["day"]
        assert day_dim.values == list(range(16))

    def test_popularity_skew(self):
        """Zipf products: the most popular sells more than the median."""
        config = SalesConfig(num_transactions=2000, seed=7)
        cube = sales_cube(config)
        by_product = cube.view(["store", "customer", "day"]).ravel()
        by_product = by_product[: cube.dimensions["product"].cardinality]
        assert by_product.max() > np.median(by_product) * 1.5
