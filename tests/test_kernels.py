"""Fused Haar cascade kernels: bit-identity, pooling, plan fusion, dispatch.

The fused execution layer (:mod:`repro.core.kernels` + the plan rewrite and
cost-aware dispatch in :mod:`repro.core.exec`) promises three things:

1. **Bit-identity** — a fused cascade performs exactly the same arithmetic,
   in exactly the same order, as the step-by-step operators, for every
   dtype and axis order (property-tested with hypothesis over 1-4 dims).
2. **Exact accounting** — fusion never changes ``planned_cost``, and the
   executor's measured operations equal the plan's price to the last op.
3. **Cost-aware dispatch** — a thread pool is only used when some node is
   worth a round-trip; otherwise the run demotes itself to serial, and the
   decision is observable in the stats dict.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.element import CubeShape, ElementId
from repro.core.exec import (
    DISPATCH_THRESHOLD,
    execute_plan,
    fuse_plan,
    plan_batch,
)
from repro.core.kernels import (
    BufferPool,
    canonical_steps,
    fused_aggregate,
    fused_cascade,
    fused_partial_sum_k,
    fused_synthesize,
)
from repro.core.materialize import MaterializedSet
from repro.core.operators import (
    OpCounter,
    partial_residual,
    partial_sum,
    partial_sum_k,
    synthesize,
)


def naive_cascade(a, steps, counter=None):
    """The reference: one operator call per step."""
    out = np.asarray(a)
    for dim, residual in steps:
        if residual:
            out = partial_residual(out, dim, counter=counter)
        else:
            out = partial_sum(out, dim, counter=counter)
    return out


# Up to 4 dimensions, power-of-two extents, odd axis orders, R1 routes.
@st.composite
def cascade_cases(draw):
    ndim = draw(st.integers(min_value=1, max_value=4))
    depths = [draw(st.integers(min_value=1, max_value=3)) for _ in range(ndim)]
    sizes = tuple(1 << k for k in depths)
    steps = []
    budget = {dim: k for dim, k in enumerate(depths)}
    n_steps = draw(st.integers(min_value=0, max_value=sum(depths)))
    for _ in range(n_steps):
        open_dims = [dim for dim, k in budget.items() if k > 0]
        if not open_dims:
            break
        dim = draw(st.sampled_from(open_dims))
        residual = draw(st.booleans())
        steps.append((dim, residual))
        budget[dim] -= 1
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return sizes, tuple(steps), seed


class TestFusedCascadeBitIdentity:
    @settings(max_examples=60, deadline=None)
    @given(case=cascade_cases(), use_float=st.booleans())
    def test_fused_equals_naive(self, case, use_float):
        """Bit-identical (tobytes equality) across dtypes and step orders,
        including arbitrarily interleaved axes and R1 steps."""
        sizes, steps, seed = case
        rng = np.random.default_rng(seed)
        if use_float:
            a = rng.standard_normal(sizes)
        else:
            a = rng.integers(-1000, 1000, size=sizes).astype(np.int64)
        naive_counter = OpCounter()
        fused_counter = OpCounter()
        expected = naive_cascade(a, steps, counter=naive_counter)
        actual = fused_cascade(a, steps, counter=fused_counter)
        assert actual.dtype == expected.dtype
        assert actual.shape == expected.shape
        assert actual.tobytes() == expected.tobytes()
        assert fused_counter.total == naive_counter.total
        assert fused_counter.events == naive_counter.events

    @settings(max_examples=30, deadline=None)
    @given(case=cascade_cases())
    def test_fused_with_pool_equals_naive(self, case):
        """Buffer recycling never changes the answer."""
        sizes, steps, seed = case
        rng = np.random.default_rng(seed)
        a = rng.standard_normal(sizes)
        pool = BufferPool()
        # Warm the pool with same-shaped garbage so hits actually occur.
        fused_cascade(a, steps, pool=pool)
        expected = naive_cascade(a, steps)
        actual = fused_cascade(a, steps, pool=pool)
        assert actual.tobytes() == expected.tobytes()

    def test_empty_chain_aliases_input(self, rng):
        a = rng.standard_normal((4, 4))
        assert fused_cascade(a, ()) is a

    def test_noncontiguous_input(self, rng):
        a = rng.standard_normal((8, 8)).T  # Fortran-ordered view
        steps = ((0, False), (1, True), (0, False))
        np.testing.assert_array_equal(
            fused_cascade(a, steps), naive_cascade(a, steps)
        )

    def test_odd_extent_rejected_with_operator_taxonomy(self, rng):
        a = rng.standard_normal((3, 4))
        with pytest.raises(ValueError, match="even extent"):
            fused_cascade(a, ((0, False),))

    def test_bad_axis_rejected(self, rng):
        a = rng.standard_normal((4, 4))
        with pytest.raises(ValueError, match="out of bounds"):
            fused_cascade(a, ((2, False),))


class TestFusedEntryPoints:
    @pytest.mark.parametrize("k", [0, 1, 2, 3])
    def test_partial_sum_k_matches(self, rng, k):
        a = rng.standard_normal((8, 4))
        counter = OpCounter()
        fused = fused_partial_sum_k(a, 0, k, counter=counter)
        reference = OpCounter()
        expected = partial_sum_k(a, 0, k, counter=reference)
        assert fused.tobytes() == expected.tobytes()
        assert counter.total == reference.total

    def test_partial_sum_k_negative_k(self, rng):
        with pytest.raises(ValueError, match="non-negative"):
            fused_partial_sum_k(rng.standard_normal((4,)), 0, -1)

    def test_aggregate_matches_nested(self, rng):
        a = rng.standard_normal((8, 4, 2))
        levels = (2, 1, 1)
        expected = a
        for dim, k in enumerate(levels):
            expected = partial_sum_k(expected, dim, k)
        actual = fused_aggregate(a, levels)
        assert actual.tobytes() == expected.tobytes()

    def test_aggregate_validates_levels(self, rng):
        a = rng.standard_normal((4, 4))
        with pytest.raises(ValueError, match="cascade depths"):
            fused_aggregate(a, (1,))
        with pytest.raises(ValueError, match="non-negative"):
            fused_aggregate(a, (1, -1))

    def test_synthesize_matches(self, rng):
        a = rng.standard_normal((4, 4))
        p, r = partial_sum(a, 1), partial_residual(a, 1)
        pool = BufferPool()
        counter = OpCounter()
        reference = OpCounter()
        expected = synthesize(p, r, 1, counter=reference)
        actual = fused_synthesize(p, r, 1, counter=counter, pool=pool)
        assert actual.tobytes() == expected.tobytes()
        assert counter.total == reference.total


class TestBufferPool:
    def test_take_recycles_given_buffer(self):
        pool = BufferPool()
        a = np.empty((4, 4))
        pool.give(a)
        assert pool.take((4, 4), np.float64) is a
        assert pool.stats()["hits"] == 1

    def test_miss_allocates(self):
        pool = BufferPool()
        out = pool.take((2, 2), np.int64)
        assert out.shape == (2, 2) and out.dtype == np.int64
        assert pool.stats()["misses"] == 1

    def test_shape_and_dtype_keyed(self):
        pool = BufferPool()
        pool.give(np.empty((4, 4), dtype=np.float64))
        assert pool.take((4, 4), np.int64).dtype == np.int64
        assert pool.stats()["hits"] == 0

    def test_noncontiguous_not_retained(self):
        pool = BufferPool()
        pool.give(np.empty((4, 4)).T[:, ::2])
        assert pool.stats()["returned"] == 0

    def test_max_cells_bound_drops(self):
        pool = BufferPool(max_cells=10)
        pool.give(np.empty(8))
        pool.give(np.empty(8))  # would exceed the bound
        stats = pool.stats()
        assert stats["returned"] == 1
        assert stats["dropped"] == 1
        assert stats["free_cells"] <= 10

    def test_give_none_is_noop(self):
        pool = BufferPool()
        pool.give(None)
        assert pool.stats()["returned"] == 0

    def test_min_cells_floor_bypasses_small_buffers(self):
        """Sub-floor requests skip the pool: no retention, no recycling,
        just a fresh allocation counted under ``bypassed``."""
        pool = BufferPool(min_cells=16)
        small = np.empty((2, 4))  # 8 cells < 16
        pool.give(small)
        assert pool.stats()["returned"] == 0
        out = pool.take((2, 4), np.float64)
        assert out is not small and out.shape == (2, 4)
        stats = pool.stats()
        assert stats["bypassed"] == 1
        assert stats["hits"] == 0 and stats["misses"] == 0
        # At or above the floor, recycling works as usual.
        big = np.empty((4, 4))
        pool.give(big)
        assert pool.take((4, 4), np.float64) is big


def all_group_bys(shape: CubeShape):
    d = shape.ndim
    return [
        shape.aggregated_view(agg)
        for k in range(d + 1)
        for agg in combinations(range(d), k)
    ]


def pyramid_from_root(shape: CubeShape, rng) -> MaterializedSet:
    ms = MaterializedSet(shape)
    ms.store(shape.root(), rng.standard_normal(shape.sizes))
    return ms


class TestPlanFusion:
    def test_fusion_preserves_planned_cost_and_targets(self, shape_3d, rng):
        ms = pyramid_from_root(shape_3d, rng)
        targets = all_group_bys(shape_3d)
        unfused = plan_batch(targets, ms.elements, fuse=False)
        fused = fuse_plan(unfused)
        assert fused.targets == unfused.targets
        assert fused.planned_cost == unfused.planned_cost
        assert len(fused.nodes) <= len(unfused.nodes)
        assert all(t in fused.nodes for t in targets)

    def test_fusion_collapses_single_target_cascade(self, rng):
        """One deep roll-up from the root is one fused node."""
        shape = CubeShape((16, 16))
        ms = pyramid_from_root(shape, rng)
        target = shape.aggregated_view((0, 1))
        plan = plan_batch([target], ms.elements)
        kinds = [n.kind for n in plan.nodes.values()]
        assert kinds.count("fused") == 1
        assert kinds.count("step") == 0
        (fused_node,) = [n for n in plan.nodes.values() if n.kind == "fused"]
        source = plan.nodes[fused_node.deps[0]].element
        assert fused_node.steps == canonical_steps(source, target)
        assert fused_node.cost == source.volume - target.volume

    def test_shared_interiors_stay_explicit(self, shape_3d, rng):
        """Fusion never absorbs a node with more than one consumer."""
        ms = pyramid_from_root(shape_3d, rng)
        plan = plan_batch(all_group_bys(shape_3d), ms.elements)
        for node in plan.nodes.values():
            if node.kind != "fused":
                continue
            dep = node.deps[0]
            # The fused run's source survives, and the absorbed interiors
            # are gone — every remaining dep is a real DAG node.
            assert dep in plan.nodes

    def test_fused_topological_order_valid(self, shape_3d, rng):
        ms = pyramid_from_root(shape_3d, rng)
        plan = plan_batch(all_group_bys(shape_3d), ms.elements)
        seen = set()
        for key, node in plan.nodes.items():
            assert all(dep in seen for dep in node.deps), key
            seen.add(key)

    @pytest.mark.parametrize("sizes", [(4, 4), (8, 4, 2), (16, 16)])
    def test_fused_execution_bit_identical_to_unfused(self, sizes, rng):
        shape = CubeShape(sizes)
        ms = pyramid_from_root(shape, rng)
        targets = all_group_bys(shape)
        arrays = {e: ms.array(e) for e in ms.elements}
        unfused = plan_batch(targets, ms.elements, fuse=False)
        fused = plan_batch(targets, ms.elements, fuse=True)
        unfused_counter = OpCounter()
        fused_counter = OpCounter()
        expected = execute_plan(unfused, arrays, counter=unfused_counter)
        actual = execute_plan(fused, arrays, counter=fused_counter)
        for target in targets:
            assert actual[target].tobytes() == expected[target].tobytes()
        assert fused_counter.total == unfused_counter.total

    def test_planned_equals_measured_after_fusion(self, shape_3d, rng):
        """The satellite acceptance: planned op count == measured op count
        on the fused plan, exactly."""
        ms = pyramid_from_root(shape_3d, rng)
        targets = all_group_bys(shape_3d)
        plan = plan_batch(targets, ms.elements)
        assert any(n.kind == "fused" for n in plan.nodes.values())
        counter = OpCounter()
        execute_plan(plan, {e: ms.array(e) for e in ms.elements}, counter=counter)
        assert counter.total == plan.planned_cost

    def test_fusion_keeps_target_interiors(self, rng):
        """An interior of one cascade that is itself a target must remain
        a published node after fusion."""
        shape = CubeShape((16,))
        ms = pyramid_from_root(shape, rng)
        deep = shape.aggregated_view((0,))
        mid = ElementId(shape, ((2, 0),))
        plan = plan_batch([deep, mid], ms.elements)
        assert mid in plan.nodes
        arrays = {e: ms.array(e) for e in ms.elements}
        results = execute_plan(plan, arrays)
        np.testing.assert_array_equal(results[mid], ms.assemble(mid))
        np.testing.assert_array_equal(results[deep], ms.assemble(deep))


class TestCostAwareDispatch:
    def test_small_plan_demotes_to_serial(self, shape_3d, rng):
        ms = pyramid_from_root(shape_3d, rng)
        targets = all_group_bys(shape_3d)
        plan = plan_batch(targets, ms.elements)
        assert max(n.cost for n in plan.nodes.values()) < DISPATCH_THRESHOLD
        stats: dict = {}
        execute_plan(
            plan,
            {e: ms.array(e) for e in ms.elements},
            max_workers=4,
            stats=stats,
        )
        assert stats["demoted"] is True
        assert stats["workers_requested"] == 4
        assert stats["workers_effective"] == 1
        assert stats["dispatch_threshold"] == DISPATCH_THRESHOLD

    def test_zero_threshold_keeps_workers(self, shape_3d, rng):
        ms = pyramid_from_root(shape_3d, rng)
        targets = all_group_bys(shape_3d)
        plan = plan_batch(targets, ms.elements)
        stats: dict = {}
        results = execute_plan(
            plan,
            {e: ms.array(e) for e in ms.elements},
            max_workers=2,
            dispatch_threshold=0,
            stats=stats,
        )
        assert stats["demoted"] is False
        assert stats["workers_effective"] == 2
        for target in targets:
            np.testing.assert_array_equal(results[target], ms.assemble(target))

    def test_mixed_inline_and_pooled_bit_identical(self, rng):
        """With the threshold between node sizes, small nodes run inline
        and large ones on the pool — answers unchanged, accounting exact."""
        shape = CubeShape((16, 16))
        ms = pyramid_from_root(shape, rng)
        targets = all_group_bys(shape)
        plan = plan_batch(targets, ms.elements)
        costs = sorted({n.cost for n in plan.nodes.values() if n.cost})
        threshold = costs[len(costs) // 2]
        counter = OpCounter()
        stats: dict = {}
        results = execute_plan(
            plan,
            {e: ms.array(e) for e in ms.elements},
            counter=counter,
            max_workers=2,
            dispatch_threshold=threshold,
            stats=stats,
        )
        assert stats["demoted"] is False
        assert counter.total == plan.planned_cost
        for target in targets:
            np.testing.assert_array_equal(results[target], ms.assemble(target))

    def test_buffer_pool_stats_recorded(self, shape_3d, rng):
        ms = pyramid_from_root(shape_3d, rng)
        targets = all_group_bys(shape_3d)
        plan = plan_batch(targets, ms.elements)
        stats: dict = {}
        # Zero engagement floor: the test cube's temporaries are tiny.
        execute_plan(
            plan,
            {e: ms.array(e) for e in ms.elements},
            stats=stats,
            pool=BufferPool(),
        )
        bp = stats["buffer_pool"]
        assert bp["returned"] > 0  # interiors were recycled

    def test_pool_reuse_across_batches(self, rng):
        """The MaterializedSet-owned pool turns the second identical batch
        into mostly buffer hits.  The cube must be large enough that its
        interiors clear the pool's POOL_MIN_CELLS engagement floor."""
        ms = pyramid_from_root(CubeShape((128, 64)), rng)
        targets = all_group_bys(CubeShape((128, 64)))
        ms.assemble_batch(targets)
        before = ms.pool_stats()["hits"]
        expected = {t: ms.assemble(t) for t in targets}
        results = ms.assemble_batch(targets)
        assert ms.pool_stats()["hits"] > before
        for target in targets:
            np.testing.assert_array_equal(results[target], expected[target])

    def test_invalid_backend_rejected(self, shape_3d, rng):
        ms = pyramid_from_root(shape_3d, rng)
        plan = plan_batch([shape_3d.aggregated_view((0,))], ms.elements)
        with pytest.raises(ValueError, match="unknown backend"):
            execute_plan(plan, {e: ms.array(e) for e in ms.elements}, backend="fiber")


class TestProcessBackend:
    def test_shared_memory_backend_bit_identical(self, rng):
        """Smoke: the process backend (threshold lowered so the modest test
        cube actually dispatches) matches the serial answers exactly and
        keeps counting exact."""
        shape = CubeShape((64, 64))
        ms = pyramid_from_root(shape, rng)
        targets = all_group_bys(shape)
        arrays = {e: ms.array(e) for e in ms.elements}
        plan = plan_batch(targets, ms.elements)
        serial_counter = OpCounter()
        expected = execute_plan(plan, arrays, counter=serial_counter)
        counter = OpCounter()
        stats: dict = {}
        actual = execute_plan(
            plan,
            arrays,
            counter=counter,
            max_workers=2,
            backend="process",
            process_threshold=1 << 8,
            stats=stats,
        )
        assert stats["backend"] == "process"
        for target in targets:
            assert actual[target].tobytes() == expected[target].tobytes()
        assert counter.total == serial_counter.total == plan.planned_cost
