"""The chaos acceptance replay: seeded faults, bit-identical answers."""

import json

import pytest

from repro.resilience.chaos import ChaosConfig, render_report, run_chaos


@pytest.fixture(scope="module")
def report():
    # One replay shared by the assertions below (the replay is the
    # expensive part; the assertions inspect different facets of it).
    return run_chaos(ChaosConfig(seed=7, queries=40))


class TestChaosGate:
    def test_survives_with_every_answer_bit_identical(self, report):
        assert report["uncaught_exception"] is None
        assert report["mismatches"] == []
        assert report["answered"] == report["operations"]
        assert report["survival_rate"] == 1.0
        assert report["ok"] is True

    def test_faults_actually_fired(self, report):
        assert report["faults_injected"]["fired_total"] > 0
        assert report["retries"] > 0

    def test_corruption_was_quarantined(self, report):
        fired = report["faults_injected"]["fired_by_site"]
        assert fired.get("materialize.store", {}).get("corrupt") == 1
        assert report["integrity_failures"] >= 1

    def test_deadline_probe_times_out_and_frees_the_slot(self, report):
        probe = report["deadline_probe"]
        assert probe["timeout_raised"] is True
        assert probe["slot_freed"] is True
        assert probe["timeouts_counted"] == 1

    def test_report_is_json_serializable(self, report):
        blob = json.loads(json.dumps(report))
        assert blob["ok"] is True

    def test_render_report_flags_survival(self, report):
        text = render_report(report)
        assert "SURVIVED" in text
        assert "100.0%" in text


class TestChaosDeterminism:
    def test_same_seed_same_fault_plan(self):
        config = ChaosConfig(seed=3, queries=20)
        first = run_chaos(config)
        second = run_chaos(config)
        assert (
            first["faults_injected"]["fired_by_site"]
            == second["faults_injected"]["fired_by_site"]
        )
        assert (
            first["faults_injected"]["invocations"]
            == second["faults_injected"]["invocations"]
        )
        assert first["ok"] and second["ok"]

    def test_other_seeds_also_survive(self):
        for seed in (0, 1):
            assert run_chaos(ChaosConfig(seed=seed, queries=25))["ok"], seed


class TestFusedFaultSites:
    """Regression: ``exec.compute_node`` fires once per *fused* node.

    Plan fusion replaces a chain of step nodes with one fused node; the
    fault site must fire exactly once per non-stored DAG node — so the
    seeded fault schedule is a pure function of the (deterministic) fused
    plan shape, and chaos replays stay bit-for-bit reproducible.
    """

    @staticmethod
    def _setup():
        import numpy as np

        from repro.core.element import CubeShape
        from repro.core.exec import plan_batch
        from repro.core.materialize import MaterializedSet

        shape = CubeShape((8, 4, 2))
        ms = MaterializedSet(shape)
        rng = np.random.default_rng(3)
        ms.store(shape.root(), rng.standard_normal(shape.sizes))
        targets = [
            shape.aggregated_view(agg)
            for agg in [(0,), (1,), (0, 1), (0, 2), (0, 1, 2)]
        ]
        plan = plan_batch(targets, ms.elements)
        return ms, targets, plan

    def test_one_fire_per_fused_node(self):
        from repro.resilience.faults import FaultInjector, FaultRule

        ms, targets, plan = self._setup()
        nonstored = sum(
            1 for n in plan.nodes.values() if n.kind != "stored"
        )
        assert any(n.kind == "fused" for n in plan.nodes.values())
        # A zero-probability rule arms the site: invocations are counted,
        # nothing ever fires.
        injector = FaultInjector(
            [FaultRule(site="exec.compute_node", kind="error", probability=0.0)],
            seed=0,
        )
        with injector.activate():
            ms.assemble_batch(targets)
        assert injector.invocations("exec.compute_node") == nonstored

    def test_site_sequence_pinned_and_thread_invariant(self):
        """The invocation count equals the fused plan's non-stored node
        count on every execution path — serial, threaded, and repeated —
        so a seeded schedule replays identically."""
        from repro.resilience.faults import FaultInjector, FaultRule

        ms, targets, plan = self._setup()
        nonstored = sum(
            1 for n in plan.nodes.values() if n.kind != "stored"
        )

        def run(**kwargs):
            injector = FaultInjector(
                [
                    FaultRule(
                        site="exec.compute_node",
                        kind="error",
                        probability=0.0,
                    )
                ],
                seed=0,
            )
            with injector.activate():
                ms.assemble_batch(targets, **kwargs)
            return injector.invocations("exec.compute_node")

        serial = run()
        threaded = run(max_workers=3)
        repeat = run()
        assert serial == threaded == repeat == nonstored

    def test_seeded_fault_schedule_replays_identically(self):
        """With a real (firing) rule, two runs fail at the same node and
        inject the same fault plan — determinism under fusion."""
        import pytest as _pytest

        from repro.errors import TransientFault
        from repro.resilience.faults import FaultInjector, FaultRule

        ms, targets, _ = self._setup()

        def run():
            injector = FaultInjector(
                [
                    FaultRule(
                        site="exec.compute_node",
                        kind="error",
                        probability=1.0,
                        max_fires=1,
                    )
                ],
                seed=11,
            )
            with injector.activate():
                with _pytest.raises(TransientFault):
                    ms.assemble_batch(targets)
            return injector.summary()

        first = run()
        second = run()
        assert first["fired_by_site"] == second["fired_by_site"]
        assert first["invocations"] == second["invocations"]
