"""The chaos acceptance replay: seeded faults, bit-identical answers."""

import json

import numpy as np
import pytest

from repro.resilience.chaos import ChaosConfig, render_report, run_chaos


@pytest.fixture(scope="module")
def report():
    # One replay shared by the assertions below (the replay is the
    # expensive part; the assertions inspect different facets of it).
    return run_chaos(ChaosConfig(seed=7, queries=40))


class TestChaosGate:
    def test_survives_with_every_answer_bit_identical(self, report):
        assert report["uncaught_exception"] is None
        assert report["mismatches"] == []
        assert report["answered"] == report["operations"]
        assert report["survival_rate"] == 1.0
        assert report["ok"] is True

    def test_faults_actually_fired(self, report):
        assert report["faults_injected"]["fired_total"] > 0
        assert report["retries"] > 0

    def test_corruption_was_quarantined(self, report):
        fired = report["faults_injected"]["fired_by_site"]
        assert fired.get("materialize.store", {}).get("corrupt") == 1
        assert report["integrity_failures"] >= 1

    def test_deadline_probe_times_out_and_frees_the_slot(self, report):
        probe = report["deadline_probe"]
        assert probe["timeout_raised"] is True
        assert probe["slot_freed"] is True
        assert probe["timeouts_counted"] == 1

    def test_report_is_json_serializable(self, report):
        blob = json.loads(json.dumps(report))
        assert blob["ok"] is True

    def test_render_report_flags_survival(self, report):
        text = render_report(report)
        assert "SURVIVED" in text
        assert "100.0%" in text


class TestChaosDeterminism:
    def test_same_seed_same_fault_plan(self):
        config = ChaosConfig(seed=3, queries=20)
        first = run_chaos(config)
        second = run_chaos(config)
        assert (
            first["faults_injected"]["fired_by_site"]
            == second["faults_injected"]["fired_by_site"]
        )
        assert (
            first["faults_injected"]["invocations"]
            == second["faults_injected"]["invocations"]
        )
        assert first["ok"] and second["ok"]

    def test_other_seeds_also_survive(self):
        for seed in (0, 1):
            assert run_chaos(ChaosConfig(seed=seed, queries=25))["ok"], seed


class TestFusedFaultSites:
    """Regression: ``exec.compute_node`` fires once per *fused* node.

    Plan fusion replaces a chain of step nodes with one fused node; the
    fault site must fire exactly once per non-stored DAG node — so the
    seeded fault schedule is a pure function of the (deterministic) fused
    plan shape, and chaos replays stay bit-for-bit reproducible.
    """

    @staticmethod
    def _setup():
        import numpy as np

        from repro.core.element import CubeShape
        from repro.core.exec import plan_batch
        from repro.core.materialize import MaterializedSet

        shape = CubeShape((8, 4, 2))
        ms = MaterializedSet(shape)
        rng = np.random.default_rng(3)
        ms.store(shape.root(), rng.standard_normal(shape.sizes))
        targets = [
            shape.aggregated_view(agg)
            for agg in [(0,), (1,), (0, 1), (0, 2), (0, 1, 2)]
        ]
        plan = plan_batch(targets, ms.elements)
        return ms, targets, plan

    def test_one_fire_per_fused_node(self):
        from repro.resilience.faults import FaultInjector, FaultRule

        ms, targets, plan = self._setup()
        nonstored = sum(
            1 for n in plan.nodes.values() if n.kind != "stored"
        )
        assert any(n.kind == "fused" for n in plan.nodes.values())
        # A zero-probability rule arms the site: invocations are counted,
        # nothing ever fires.
        injector = FaultInjector(
            [FaultRule(site="exec.compute_node", kind="error", probability=0.0)],
            seed=0,
        )
        with injector.activate():
            ms.assemble_batch(targets)
        assert injector.invocations("exec.compute_node") == nonstored

    def test_site_sequence_pinned_and_thread_invariant(self):
        """The invocation count equals the fused plan's non-stored node
        count on every execution path — serial, threaded, and repeated —
        so a seeded schedule replays identically."""
        from repro.resilience.faults import FaultInjector, FaultRule

        ms, targets, plan = self._setup()
        nonstored = sum(
            1 for n in plan.nodes.values() if n.kind != "stored"
        )

        def run(**kwargs):
            injector = FaultInjector(
                [
                    FaultRule(
                        site="exec.compute_node",
                        kind="error",
                        probability=0.0,
                    )
                ],
                seed=0,
            )
            with injector.activate():
                ms.assemble_batch(targets, **kwargs)
            return injector.invocations("exec.compute_node")

        serial = run()
        threaded = run(max_workers=3)
        repeat = run()
        assert serial == threaded == repeat == nonstored

    def test_seeded_fault_schedule_replays_identically(self):
        """With a real (firing) rule, two runs fail at the same node and
        inject the same fault plan — determinism under fusion."""
        import pytest as _pytest

        from repro.errors import TransientFault
        from repro.resilience.faults import FaultInjector, FaultRule

        ms, targets, _ = self._setup()

        def run():
            injector = FaultInjector(
                [
                    FaultRule(
                        site="exec.compute_node",
                        kind="error",
                        probability=1.0,
                        max_fires=1,
                    )
                ],
                seed=11,
            )
            with injector.activate():
                with _pytest.raises(TransientFault):
                    ms.assemble_batch(targets)
            return injector.summary()

        first = run()
        second = run()
        assert first["fired_by_site"] == second["fired_by_site"]
        assert first["invocations"] == second["invocations"]

def _cube(seed=5, sizes=(8, 8, 8)):
    from repro.cube.datacube import DataCube
    from repro.cube.dimensions import Dimension

    rng = np.random.default_rng(seed)
    values = rng.integers(0, 100, size=sizes).astype(np.float64)
    dims = [Dimension(f"d{i}", list(range(n))) for i, n in enumerate(sizes)]
    return DataCube(values, dims, measure="amount")


class TestShardedChaos:
    """The chaos gate, sharded: faults on shard legs must stay contained.

    The replay's chaos server runs with two shards while the reference
    stays monolithic — so the same byte-identity assertion now also gates
    the scatter-gather merge under transient errors, injected latency,
    and a one-shot store corruption (which lands on a single shard's slab
    and must quarantine/re-route that shard only).
    """

    @pytest.fixture(scope="class")
    def sharded_report(self):
        return run_chaos(ChaosConfig(seed=7, queries=40, shards=2))

    def test_sharded_replay_survives_bit_identical(self, sharded_report):
        assert sharded_report["uncaught_exception"] is None
        assert sharded_report["mismatches"] == []
        assert sharded_report["answered"] == sharded_report["operations"]
        assert sharded_report["ok"] is True

    def test_corruption_landed_on_one_shard_slab(self, sharded_report):
        fired = sharded_report["faults_injected"]["fired_by_site"]
        assert fired.get("materialize.store", {}).get("corrupt") == 1
        # First-use verification quarantined the damaged local copy (the
        # counter survives the workload's later reconfigure, which swaps
        # in a fresh set and clears the per-shard quarantine lists).
        assert sharded_report["integrity_failures"] >= 1

    def test_health_reports_the_shard_layout(self, sharded_report):
        shards = sharded_report["health"]["shards"]
        assert shards["count"] == 2
        assert len(shards["per_shard"]) == 2
        assert shards["scatters"] > 0

    def test_sharded_chaos_is_deterministic(self):
        config = ChaosConfig(seed=3, queries=20, shards=2)
        first = run_chaos(config)
        second = run_chaos(config)
        assert first["ok"] and second["ok"]
        assert (
            first["faults_injected"]["fired_by_site"]
            == second["faults_injected"]["fired_by_site"]
        )


class TestShardFaultIsolation:
    """Targeted single-shard faults: quarantine and retry stay per-shard.

    These tests pin *which* shard a fault lands on, so they use the serial
    scatter path (``server.view`` assembles with ``max_workers=1``): shard
    legs then visit each fault site in shard order and the seeded schedule
    is deterministic.
    """

    REQUESTS = [[], ["d0"], ["d1"], ["d2"], ["d0", "d2"], ["d1", "d2"]]

    @staticmethod
    def _servers(shards=2):
        from repro.server import OLAPServer

        mono = OLAPServer(_cube())
        sharded = OLAPServer(_cube(), shards=shards, max_retries=2)
        return mono, sharded

    def test_corrupt_store_quarantines_a_single_shard(self):
        from repro.resilience.faults import FaultInjector, FaultRule

        mono, _ = self._servers()
        expected = {
            tuple(r): mono.view(r).tobytes() for r in self.REQUESTS
        }
        # The constructor stores the root slab shard by shard (invocation
        # 0 = shard 0, invocation 1 = shard 1): ``start_after=1`` damages
        # exactly shard 1's copy.
        injector = FaultInjector(
            [
                FaultRule(
                    site="materialize.store",
                    kind="corrupt",
                    probability=1.0,
                    start_after=1,
                    max_fires=1,
                )
            ],
            seed=3,
        )
        from repro.server import OLAPServer

        with injector.activate():
            sharded = OLAPServer(_cube(), shards=2, max_retries=2)
            answers = {
                tuple(r): sharded.view(r).tobytes() for r in self.REQUESTS
            }
        assert answers == expected
        per_shard = sharded.health()["shards"]["per_shard"]
        assert [s["quarantined"] for s in per_shard] == [0, 1]
        # The quarantined shard re-routed through its base slab; the
        # healthy shard kept serving from its materialized copy.
        assert sharded.metrics.counter("shard_degraded_total").total() > 0
        assert (
            sharded.metrics.counter("shard_degraded_total").value(shard=0)
            == 0.0
        )

    def test_transient_error_on_a_shard_leg_is_retried(self):
        from repro.resilience.faults import FaultInjector, FaultRule

        mono, sharded = self._servers()
        expected = {
            tuple(r): mono.view(r).tobytes() for r in self.REQUESTS
        }
        injector = FaultInjector(
            [
                FaultRule(
                    site="exec.compute_node",
                    kind="error",
                    probability=1.0,
                    max_fires=1,
                )
            ],
            seed=5,
        )
        with injector.activate():
            answers = {
                tuple(r): sharded.view(r).tobytes() for r in self.REQUESTS
            }
        assert answers == expected
        # Serial scatter: the one-shot error hit shard 0's first leg and
        # the shard-level retry absorbed it without touching shard 1.
        assert (
            sharded.metrics.counter("shard_retries_total").value(shard=0)
            == 1.0
        )
        assert (
            sharded.metrics.counter("shard_retries_total").value(shard=1)
            == 0.0
        )
        assert injector.summary()["fired_total"] == 1

    def test_latency_on_a_shard_leg_keeps_answers_exact(self):
        from repro.resilience.faults import FaultInjector, FaultRule

        mono, sharded = self._servers()
        expected = mono.view(["d0"]).tobytes()
        injector = FaultInjector(
            [
                FaultRule(
                    site="materialize.assemble",
                    kind="latency",
                    probability=1.0,
                    latency_ms=1.0,
                    max_fires=1,
                )
            ],
            seed=9,
        )
        with injector.activate():
            got = sharded.view(["d0"]).tobytes()
            # One assemble entry per shard leg: both legs visited the
            # site even though only the first stalled.
            assert injector.invocations("materialize.assemble") == 2
        assert got == expected
