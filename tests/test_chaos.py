"""The chaos acceptance replay: seeded faults, bit-identical answers."""

import json

import pytest

from repro.resilience.chaos import ChaosConfig, render_report, run_chaos


@pytest.fixture(scope="module")
def report():
    # One replay shared by the assertions below (the replay is the
    # expensive part; the assertions inspect different facets of it).
    return run_chaos(ChaosConfig(seed=7, queries=40))


class TestChaosGate:
    def test_survives_with_every_answer_bit_identical(self, report):
        assert report["uncaught_exception"] is None
        assert report["mismatches"] == []
        assert report["answered"] == report["operations"]
        assert report["survival_rate"] == 1.0
        assert report["ok"] is True

    def test_faults_actually_fired(self, report):
        assert report["faults_injected"]["fired_total"] > 0
        assert report["retries"] > 0

    def test_corruption_was_quarantined(self, report):
        fired = report["faults_injected"]["fired_by_site"]
        assert fired.get("materialize.store", {}).get("corrupt") == 1
        assert report["integrity_failures"] >= 1

    def test_deadline_probe_times_out_and_frees_the_slot(self, report):
        probe = report["deadline_probe"]
        assert probe["timeout_raised"] is True
        assert probe["slot_freed"] is True
        assert probe["timeouts_counted"] == 1

    def test_report_is_json_serializable(self, report):
        blob = json.loads(json.dumps(report))
        assert blob["ok"] is True

    def test_render_report_flags_survival(self, report):
        text = render_report(report)
        assert "SURVIVED" in text
        assert "100.0%" in text


class TestChaosDeterminism:
    def test_same_seed_same_fault_plan(self):
        config = ChaosConfig(seed=3, queries=20)
        first = run_chaos(config)
        second = run_chaos(config)
        assert (
            first["faults_injected"]["fired_by_site"]
            == second["faults_injected"]["fired_by_site"]
        )
        assert (
            first["faults_injected"]["invocations"]
            == second["faults_injected"]["invocations"]
        )
        assert first["ok"] and second["ok"]

    def test_other_seeds_also_survive(self):
        for seed in (0, 1):
            assert run_chaos(ChaosConfig(seed=seed, queries=25))["ok"], seed
