"""Tests for the validation tooling and query-log workload builder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bases import wavelet_basis
from repro.core.materialize import MaterializedSet
from repro.core.validate import validate_materialized_set, validate_selection
from repro.workloads.from_queries import population_from_query_log
from repro.workloads import SalesConfig, sales_cube


@pytest.fixture
def cube():
    return sales_cube(SalesConfig(num_transactions=200, num_days=8, seed=67))


class TestValidateMaterializedSet:
    def test_clean_set_passes(self, cube):
        ms = MaterializedSet.from_cube(
            cube.values, wavelet_basis(cube.shape_id)
        )
        report = validate_materialized_set(ms, cube.values)
        assert report.ok
        assert report.checked == len(ms)
        report.raise_if_failed()  # no-op

    def test_corruption_detected(self, cube):
        ms = MaterializedSet.from_cube(
            cube.values, wavelet_basis(cube.shape_id)
        )
        victim = ms.elements[0]
        ms.array(victim)[(0,) * cube.shape_id.ndim] += 42.0
        report = validate_materialized_set(ms, cube.values)
        assert not report.ok
        assert any(victim.describe() in err for err in report.errors)
        with pytest.raises(AssertionError, match="validation failed"):
            report.raise_if_failed()

    def test_missed_update_detected(self, cube):
        """Updating the cube without propagating makes the set stale."""
        ms = MaterializedSet.from_cube(
            cube.values, wavelet_basis(cube.shape_id)
        )
        updated = cube.values.copy()
        updated[(0,) * cube.shape_id.ndim] += 10.0
        report = validate_materialized_set(ms, updated)
        assert not report.ok

    def test_shape_mismatch(self, cube):
        ms = MaterializedSet.from_cube(
            cube.values, [cube.shape_id.root()]
        )
        report = validate_materialized_set(ms, np.zeros((2, 2)))
        assert not report.ok
        assert "does not match" in report.errors[0]


class TestValidateSelection:
    def test_complete_basis_passes(self, cube):
        basis = wavelet_basis(cube.shape_id)
        report = validate_selection(
            basis, expect_complete=True, expect_non_redundant=True
        )
        assert report.ok

    def test_incomplete_flagged(self, cube):
        shape = cube.shape_id
        report = validate_selection([shape.root().partial_child(0)])
        assert not report.ok
        assert "not complete" in report.errors[0]

    def test_redundancy_flagged(self, cube):
        shape = cube.shape_id
        report = validate_selection(
            [shape.root(), shape.root().partial_child(0)],
            expect_non_redundant=True,
        )
        assert not report.ok

    def test_duplicates_flagged(self, cube):
        shape = cube.shape_id
        report = validate_selection([shape.root(), shape.root()])
        assert not report.ok
        assert any("duplicate" in e for e in report.errors)

    def test_empty_flagged(self):
        report = validate_selection([])
        assert not report.ok


class TestPopulationFromQueryLog:
    def test_frequencies_match_counts(self, cube):
        log = [
            "SUM BY product",
            "SUM BY product",
            "SUM BY product",
            "SUM",
        ]
        population = population_from_query_log(cube, log)
        names = cube.dimensions.names
        by_product = cube.shape_id.aggregated_view(
            [cube.dimensions.axis_of(n) for n in names if n != "product"]
        )
        grand = cube.shape_id.total_aggregation()
        assert population.frequency_of(by_product) == pytest.approx(0.75)
        assert population.frequency_of(grand) == pytest.approx(0.25)

    def test_where_queries_attributed_to_retained_view(self, cube):
        log = ["SUM BY store WHERE day IN [0, 4)"]
        population = population_from_query_log(cube, log)
        names = cube.dimensions.names
        by_store = cube.shape_id.aggregated_view(
            [cube.dimensions.axis_of(n) for n in names if n != "store"]
        )
        assert population.frequency_of(by_store) == pytest.approx(1.0)

    def test_smoothing_covers_all_views(self, cube):
        population = population_from_query_log(
            cube, ["SUM BY product"], smoothing=0.5
        )
        assert len(population) == cube.shape_id.num_aggregated_views()
        assert all(f > 0 for _, f in population)

    def test_bad_statement_reported(self, cube):
        with pytest.raises(ValueError, match="bad logged query"):
            population_from_query_log(cube, ["SELECT nope"])

    def test_unknown_dimension_reported(self, cube):
        with pytest.raises(ValueError, match="unknown dimensions"):
            population_from_query_log(cube, ["SUM BY bogus"])

    def test_empty_log_rejected(self, cube):
        with pytest.raises(ValueError, match="empty query log"):
            population_from_query_log(cube, [])

    def test_feeds_selection_end_to_end(self, cube):
        """Log -> population -> Algorithm 1 -> serving the hot view free."""
        from repro.core.materialize import MaterializedSet
        from repro.core.operators import OpCounter
        from repro.core.select_basis import select_minimum_cost_basis

        log = ["SUM BY product, store"] * 9 + ["SUM"]
        population = population_from_query_log(cube, log)
        selection = select_minimum_cost_basis(cube.shape_id, population)
        ms = MaterializedSet.from_cube(cube.values, selection.elements)
        names = cube.dimensions.names
        hot = cube.shape_id.aggregated_view(
            [
                cube.dimensions.axis_of(n)
                for n in names
                if n not in ("product", "store")
            ]
        )
        counter = OpCounter()
        ms.assemble(hot, counter=counter)
        assert counter.total == 0  # the dominant log entry is stored
