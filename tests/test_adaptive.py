"""Tests for the dynamic adaptation layer (the paper's titular feature)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.adaptive import AccessTracker, DynamicViewAssembler
from repro.core.element import CubeShape


@pytest.fixture
def shape() -> CubeShape:
    return CubeShape((4, 4, 4))


@pytest.fixture
def data(rng, shape) -> np.ndarray:
    return rng.integers(0, 50, size=shape.sizes).astype(np.float64)


class TestAccessTracker:
    def test_decay_validation(self):
        with pytest.raises(ValueError, match="decay"):
            AccessTracker(decay=0.0)
        with pytest.raises(ValueError, match="decay"):
            AccessTracker(decay=1.5)

    def test_frequencies_reflect_counts(self, shape):
        tracker = AccessTracker(decay=1.0)  # no forgetting
        views = list(shape.aggregated_views())
        for _ in range(3):
            tracker.record(views[0])
        tracker.record(views[1])
        population = tracker.population()
        assert population.frequency_of(views[0]) == pytest.approx(0.75)
        assert population.frequency_of(views[1]) == pytest.approx(0.25)

    def test_decay_forgets_old_accesses(self, shape):
        tracker = AccessTracker(decay=0.5)
        views = list(shape.aggregated_views())
        tracker.record(views[0])
        for _ in range(10):
            tracker.record(views[1])
        population = tracker.population()
        assert population.frequency_of(views[1]) > 0.99

    def test_smoothing_includes_universe(self, shape):
        tracker = AccessTracker()
        views = list(shape.aggregated_views())
        tracker.record(views[0])
        population = tracker.population(smoothing=0.1, universe=views)
        assert len(population) == len(views)
        assert population.frequency_of(views[-1]) > 0.0

    def test_empty_tracker_raises(self):
        with pytest.raises(ValueError, match="no accesses"):
            AccessTracker().population()


class TestDynamicViewAssembler:
    def test_serves_correct_views(self, data, shape):
        assembler = DynamicViewAssembler(data, shape, reconfigure_every=1000)
        values = assembler.query_view([0, 1])
        np.testing.assert_array_equal(
            values, data.sum(axis=(0, 1), keepdims=True)
        )

    def test_answers_survive_reconfiguration(self, data, shape):
        assembler = DynamicViewAssembler(data, shape, reconfigure_every=5)
        views = list(shape.aggregated_views())
        for i in range(20):
            view = views[i % len(views)]
            values = assembler.query(view)
            expected = data.sum(
                axis=tuple(view.aggregated_dims), keepdims=True
            )
            np.testing.assert_allclose(values, expected)
        assert len(assembler.history) == 4

    def test_reconfiguration_reduces_cost_for_hot_view(self, data, shape):
        """After reconfiguring for a single hot view, serving it is free."""
        assembler = DynamicViewAssembler(data, shape, reconfigure_every=10_000)
        hot = shape.aggregated_view([0, 1, 2])
        for _ in range(10):
            assembler.query(hot)
        record = assembler.reconfigure()
        assert record.expected_cost == pytest.approx(0.0)
        assert hot in assembler.materialized.elements
        before = assembler.stats.operations
        assembler.query(hot)
        assert assembler.stats.operations == before  # zero-op serve

    def test_storage_budget_adds_redundancy(self, data, shape):
        assembler = DynamicViewAssembler(
            data,
            shape,
            storage_budget=int(1.5 * shape.volume),
            reconfigure_every=10_000,
        )
        views = list(shape.aggregated_views())
        rng = np.random.default_rng(4)
        for _ in range(30):
            assembler.query(views[int(rng.integers(len(views)))])
        record = assembler.reconfigure()
        assert record.storage <= 1.5 * shape.volume
        # Cube remains reconstructable from the adaptive selection.
        np.testing.assert_allclose(
            assembler.materialized.reconstruct_cube(), data
        )

    def test_migration_operations_recorded(self, data, shape):
        assembler = DynamicViewAssembler(data, shape, reconfigure_every=10_000)
        assembler.query_view([0])
        record = assembler.reconfigure()
        assert record.migration_operations >= 0
        assert record.at_access == 1

    def test_average_operations_counter(self, data, shape):
        assembler = DynamicViewAssembler(data, shape, reconfigure_every=10_000)
        assert assembler.average_operations_per_query == 0.0
        assembler.query_view([0, 1, 2])
        assert assembler.average_operations_per_query > 0.0

    def test_shape_mismatch(self, shape):
        with pytest.raises(ValueError, match="does not match"):
            DynamicViewAssembler(np.zeros((2, 2)), shape)
