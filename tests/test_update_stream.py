"""Streaming-ingest equivalence: interleavings vs. recompute-from-scratch.

The property at stake: after *any* interleaving of ``update`` /
``update_many`` / ``query_batch`` / ``range_sum`` (with queries answered
mid-stream from patched warm state), the server is indistinguishable from
one freshly built on the final cube — bit-identically, because the cubes
are integer-valued.  Hypothesis drives random interleavings across shard
counts; the process backend and the full differential gate get
deterministic runs (process pools are too slow for per-example spawning).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cube.datacube import DataCube
from repro.cube.dimensions import Dimension
from repro.server import OLAPServer
from repro.streaming import (
    UpdateStreamConfig,
    generate_trace,
    load_trace,
    run_update_differential,
    save_trace,
)

SIZES = (4, 8)
NAMES = ["d0", "d1"]
VIEWS = [[], ["d0"], ["d1"], ["d0", "d1"]]


def _build(values: np.ndarray, **kwargs) -> OLAPServer:
    dims = [Dimension(f"d{i}", list(range(n))) for i, n in enumerate(SIZES)]
    return OLAPServer(DataCube(values.copy(), dims, measure="m"), **kwargs)


def _op_strategy():
    coords = st.tuples(
        st.integers(0, SIZES[0] - 1), st.integers(0, SIZES[1] - 1)
    )
    delta = st.integers(-9, 9)
    return st.one_of(
        st.tuples(st.just("update"), coords, delta),
        st.tuples(
            st.just("update_many"),
            st.lists(st.tuples(coords, delta), min_size=1, max_size=4),
        ),
        st.tuples(
            st.just("query_batch"),
            st.lists(st.sampled_from(VIEWS), min_size=1, max_size=3),
        ),
        st.tuples(
            st.just("range"),
            st.tuples(
                st.tuples(st.integers(0, SIZES[0]), st.integers(0, SIZES[0])),
                st.tuples(st.integers(0, SIZES[1]), st.integers(0, SIZES[1])),
            ),
        ),
    )


def _replay(server: OLAPServer, reference: np.ndarray, ops) -> None:
    for op in ops:
        kind = op[0]
        if kind == "update":
            _, (i, j), delta = op
            server.update(float(delta), d0=i, d1=j)
            reference[i, j] += delta
        elif kind == "update_many":
            _, batch = op
            coords = np.array([c for c, _ in batch], dtype=np.int64)
            deltas = np.array([d for _, d in batch], dtype=np.float64)
            server.update_many(coords, deltas)
            np.add.at(reference, tuple(coords.T), deltas)
        elif kind == "query_batch":
            server.query_batch([list(r) for r in op[1]])
        elif kind == "range":
            _, ((a, b), (c, d)) = op
            server.range_sum(((min(a, b), max(a, b)), (min(c, d), max(c, d))))


@pytest.mark.parametrize("shards", [1, 2, 4])
class TestInterleavingsMatchFreshServer:
    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(0, 1_000),
        ops=st.lists(_op_strategy(), min_size=1, max_size=12),
    )
    def test_final_state_is_bit_identical(self, shards, seed, ops):
        rng = np.random.default_rng(seed)
        base = rng.integers(0, 50, size=SIZES).astype(np.float64)
        server = _build(base, shards=shards)
        reference = base.copy()
        _replay(server, reference, ops)
        fresh = _build(reference, shards=shards)
        assert server.cube.values.tobytes() == reference.tobytes()
        for request in VIEWS:
            assert (
                server.view(list(request)).tobytes()
                == fresh.view(list(request)).tobytes()
            )
        for ranges in (((0, 4), (0, 8)), ((1, 3), (2, 7))):
            assert server.range_sum(ranges) == fresh.range_sum(ranges)
        # The linear path never degraded to a coarse invalidation.
        assert server.health()["updates_cache_cleared"] == 0


class TestProcessBackend:
    def test_interleaved_stream_on_process_executor(self):
        report = run_update_differential(
            UpdateStreamConfig(
                sizes=(4, 8, 8),
                shard_counts=(2,),
                backend="process",
                operations=24,
            )
        )
        assert report["ok"], report


class TestDifferentialGate:
    def test_gate_passes_monolithic_and_sharded(self):
        report = run_update_differential(
            UpdateStreamConfig(
                sizes=(4, 8, 8), shard_counts=(1, 2, 4), operations=36
            )
        )
        assert report["ok"], report
        for run in report["runs"]:
            assert run["bit_identical"]
            assert run["cache_patched"] > 0
            assert run["cache_cleared"] == 0
            assert not run["epoch_violations"]

    def test_trace_roundtrips_through_json(self, tmp_path):
        config = UpdateStreamConfig(operations=10)
        trace = generate_trace(config)
        path = tmp_path / "trace.json"
        save_trace(trace, path)
        assert load_trace(path) == trace

    def test_load_trace_rejects_non_list(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"op": "update"}')
        with pytest.raises(ValueError, match="JSON list"):
            load_trace(path)

    def test_replayed_trace_is_deterministic(self):
        config = UpdateStreamConfig(sizes=(4, 8), shard_counts=(1,), operations=16)
        trace = generate_trace(config)
        first = run_update_differential(config, trace=trace)
        second = run_update_differential(config, trace=trace)
        assert first == second
        assert first["ok"]
