"""Tests for frequency-plane set geometry: completeness, non-redundancy."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bases import (
    gaussian_pyramid,
    random_wavelet_packet_basis,
    view_hierarchy,
    wavelet_basis,
)
from repro.core.element import CubeShape, ElementId
from repro.core.frequency import (
    covered_measure,
    is_basis,
    is_complete,
    is_non_redundant,
    is_non_redundant_basis,
    storage_volume,
    total_frequency_volume,
)


class TestNonRedundancy:
    def test_siblings_are_non_redundant(self, shape_4x4):
        root = shape_4x4.root()
        assert is_non_redundant(root.children(0))

    def test_nested_elements_are_redundant(self, shape_4x4):
        root = shape_4x4.root()
        assert not is_non_redundant([root, root.partial_child(0)])

    def test_duplicates_are_redundant(self, shape_4x4):
        e = shape_4x4.root().partial_child(1)
        assert not is_non_redundant([e, e])

    def test_empty_set_is_non_redundant(self):
        assert is_non_redundant([])


class TestCompleteness:
    def test_root_alone_is_complete(self, shape_4x4):
        assert is_complete([shape_4x4.root()])

    def test_single_child_is_incomplete(self, shape_4x4):
        assert not is_complete([shape_4x4.root().partial_child(0)])

    def test_child_pair_is_complete(self, shape_4x4):
        assert is_complete(list(shape_4x4.root().children(0)))

    def test_empty_set_is_incomplete(self):
        assert not is_complete([])

    def test_mixed_depth_cover(self, shape_4x4):
        """A guillotine cover with different depths per piece."""
        root = shape_4x4.root()
        p0, r0 = root.children(0)
        pieces = [p0] + list(r0.children(1))
        assert is_complete(pieces)
        assert is_non_redundant_basis(pieces)

    def test_completeness_wrt_sub_element(self, shape_4x4):
        """Procedure 1 relative to an element other than the root."""
        p0 = shape_4x4.root().partial_child(0)
        children = list(p0.children(1))
        assert is_complete(children, target=p0)
        assert not is_complete([children[0]], target=p0)

    def test_redundant_cover_detected(self, shape_4x4):
        """A redundant set that still covers the plane."""
        root = shape_4x4.root()
        pieces = [root, root.partial_child(0)]
        assert is_complete(pieces)
        assert not is_non_redundant(pieces)

    def test_row_plus_column_cover(self, shape_4x4):
        """Full-row and full-column elements overlapping but covering."""
        root = shape_4x4.root()
        p0, r0 = root.children(0)  # vertical halves
        p1, r1 = root.children(1)  # horizontal halves
        assert is_complete([p0, r0, p1])  # p1 is redundant on top
        assert not is_non_redundant([p0, r0, p1])


class TestCanonicalBases:
    """Section 4.3: the four signal-processing corollaries."""

    @pytest.mark.parametrize("sizes", [(4, 4), (8, 2), (4, 4, 4)])
    def test_wavelet_basis(self, sizes):
        shape = CubeShape(sizes)
        basis = wavelet_basis(shape)
        assert is_non_redundant_basis(basis)
        assert storage_volume(basis) == shape.volume  # Vol = n^d
        assert covered_measure(basis, shape) == pytest.approx(1.0)

    @pytest.mark.parametrize("sizes", [(4, 4), (8, 8)])
    def test_gaussian_pyramid(self, sizes):
        shape = CubeShape(sizes)
        pyramid = gaussian_pyramid(shape)
        assert is_complete(pyramid)
        assert not is_non_redundant(pyramid)
        # Vol = sum over scales of (n / 2^s)^d.
        n, d = sizes[0], len(sizes)
        expected = sum((n // 2**s) ** d for s in range(n.bit_length()))
        assert storage_volume(pyramid) == expected

    @pytest.mark.parametrize("sizes", [(4, 4), (4, 4, 4)])
    def test_view_hierarchy(self, sizes):
        shape = CubeShape(sizes)
        hierarchy = view_hierarchy(shape)
        assert is_complete(hierarchy)
        assert not is_non_redundant(hierarchy)
        n, d = sizes[0], len(sizes)
        assert storage_volume(hierarchy) == (n + 1) ** d  # paper's (n+1)^d

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_random_wavelet_packet_bases(self, seed):
        """Every sampled packet basis is complete and non-redundant."""
        shape = CubeShape((4, 4))
        basis = random_wavelet_packet_basis(
            shape, np.random.default_rng(seed)
        )
        assert is_non_redundant_basis(basis)
        assert storage_volume(basis) == shape.volume
        assert total_frequency_volume(basis) == pytest.approx(1.0)
        assert covered_measure(basis, shape) == pytest.approx(1.0)


class TestMeasureCrossCheck:
    """Procedure 1 agrees with exact grid rasterization."""

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        drop=st.integers(min_value=0, max_value=3),
    )
    def test_procedure1_matches_measure(self, seed, drop):
        shape = CubeShape((4, 4))
        rng = np.random.default_rng(seed)
        basis = random_wavelet_packet_basis(shape, rng)
        # Removing pieces must break completeness exactly when measure < 1.
        kept = basis[: max(0, len(basis) - drop)]
        complete = is_complete(kept) if kept else False
        measure = covered_measure(kept, shape) if kept else 0.0
        assert complete == (measure == pytest.approx(1.0))


class TestStorageHelpers:
    def test_storage_volume(self, shape_4x4):
        root = shape_4x4.root()
        assert storage_volume([root]) == 16
        assert storage_volume(root.children(0)) == 16

    def test_shape_mismatch_in_measure(self, shape_4x4):
        other = CubeShape((8, 8)).root()
        with pytest.raises(ValueError, match="does not belong"):
            covered_measure([other], shape_4x4)
