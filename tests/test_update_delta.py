"""Delta propagation: the math, the cache plumbing, and the server path.

The filter bank is linear (P1/R1 are signed pair sums), so a cube-cell
delta touches exactly one cell of every view element with a computable
sign.  These tests pin that law (:mod:`repro.core.delta`) against brute
recomputation, then the machinery built on it: generation-tagged LRU
entries, range-engine intermediate patching, sharded batch routing, and
the server's patch-instead-of-clear update path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.delta import (
    delta_cell,
    delta_cells,
    dyadic_scope,
    patch_array,
    validate_coordinates,
)
from repro.core.element import CubeShape, ElementId
from repro.core.materialize import MaterializedSet, compute_element
from repro.core.range_query import RangeQueryEngine
from repro.cube.datacube import DataCube
from repro.cube.dimensions import Dimension
from repro.obs import LRUCache
from repro.obs.metrics import MetricsRegistry
from repro.server import OLAPServer
from repro.shard.partition import CubePartition
from repro.shard.sets import ShardedSet

SHAPES = [CubeShape((4, 4)), CubeShape((8, 2)), CubeShape((2, 2, 4))]


def _all_elements(shape: CubeShape):
    """Every element id of the shape's full dyadic graph."""
    import itertools

    per_dim = []
    for depth in shape.depths:
        nodes = [
            (k, j) for k in range(depth + 1) for j in range(1 << k)
        ]
        per_dim.append(nodes)
    return [
        ElementId(shape, nodes) for nodes in itertools.product(*per_dim)
    ]


class TestDeltaCell:
    """A point delta touches exactly one cell, with the predicted sign."""

    @pytest.mark.parametrize("shape", SHAPES)
    def test_matches_brute_recomputation(self, shape):
        rng = np.random.default_rng(3)
        base = rng.integers(-9, 10, size=shape.sizes).astype(np.float64)
        for element in _all_elements(shape):
            before = compute_element(base, element)
            for _ in range(4):
                coords = tuple(
                    int(rng.integers(0, n)) for n in shape.sizes
                )
                delta = float(rng.integers(1, 7))
                bumped = base.copy()
                bumped[coords] += delta
                after = compute_element(bumped, element)
                diff = after - before
                cell, sign = delta_cell(element, coords)
                assert diff[cell] == sign * delta
                touched = np.count_nonzero(diff)
                assert touched == 1

    def test_sign_flips_on_odd_residual_half(self):
        # R1 at level 1: out[p] = in[2p] - in[2p+1]; the odd slot is
        # subtracted, so its sign is -1 and the even slot's is +1.
        shape = CubeShape((4,))
        element = ElementId(shape, ((1, 1),))
        assert delta_cell(element, (0,)) == ((0,), 1.0)
        assert delta_cell(element, (1,)) == ((0,), -1.0)
        assert delta_cell(element, (2,)) == ((1,), 1.0)
        assert delta_cell(element, (3,)) == ((1,), -1.0)

    def test_rank_mismatch_raises(self):
        shape = CubeShape((4, 4))
        element = shape.root()
        with pytest.raises(ValueError):
            delta_cell(element, (1,))

    @pytest.mark.parametrize("shape", SHAPES)
    def test_vectorized_equals_scalar(self, shape):
        rng = np.random.default_rng(5)
        coords = np.stack(
            [rng.integers(0, n, size=16) for n in shape.sizes], axis=1
        )
        for element in _all_elements(shape)[::3]:
            cells, signs = delta_cells(element, coords)
            for row in range(coords.shape[0]):
                cell, sign = delta_cell(element, tuple(coords[row]))
                assert tuple(cells[row]) == cell
                assert signs[row] == sign


class TestValidateAndScope:
    def test_validate_rejects_rank_and_bounds(self):
        shape = CubeShape((4, 4))
        with pytest.raises(ValueError, match="coordinates must be"):
            validate_coordinates(shape, np.zeros((2, 3), dtype=np.int64))
        with pytest.raises(ValueError, match="outside"):
            validate_coordinates(shape, np.array([[0, 4]]))
        with pytest.raises(ValueError, match="outside"):
            validate_coordinates(shape, np.array([[-1, 0]]))

    def test_dyadic_scope_names_the_touched_subtree(self):
        shape = CubeShape((8, 4))
        scope = dyadic_scope(shape, np.array([[1, 3], [6, 3]]))
        assert scope[0] == {0: [1, 6], 1: [0, 3], 2: [0, 1], 3: [0]}
        assert scope[1] == {0: [3], 1: [1], 2: [0]}

    def test_scope_bounds_patch_cells(self):
        # Every element's touched cells are drawn from the scope at the
        # element's per-axis levels.
        shape = CubeShape((8, 4))
        rng = np.random.default_rng(11)
        coords = np.stack(
            [rng.integers(0, n, size=5) for n in shape.sizes], axis=1
        )
        scope = dyadic_scope(shape, coords)
        for element in _all_elements(shape)[::5]:
            cells, _ = delta_cells(element, coords)
            for axis, (level, _index) in enumerate(element.nodes):
                assert set(cells[:, axis].tolist()) <= set(scope[axis][level])


class TestPatchArray:
    @pytest.mark.parametrize("shape", SHAPES)
    def test_patch_equals_recompute(self, shape):
        rng = np.random.default_rng(7)
        base = rng.integers(0, 50, size=shape.sizes).astype(np.float64)
        coords = np.stack(
            [rng.integers(0, n, size=6) for n in shape.sizes], axis=1
        )
        deltas = rng.integers(-5, 6, size=6).astype(np.float64)
        bumped = base.copy()
        np.add.at(bumped, tuple(coords.T), deltas)
        for element in _all_elements(shape)[::4]:
            values = compute_element(base, element).copy()
            applied = patch_array(element, values, coords, deltas)
            assert applied == 6
            assert np.array_equal(values, compute_element(bumped, element))

    def test_empty_batch_is_a_no_op(self):
        shape = CubeShape((4, 4))
        values = np.zeros(shape.root().data_shape)
        assert patch_array(
            shape.root(), values, np.empty((0, 2), dtype=np.int64), []
        ) == 0
        assert not values.any()


class TestCacheGenerations:
    def _cache(self, **kw):
        registry = MetricsRegistry()
        return LRUCache(registry=registry, name="c", **kw), registry

    def test_bump_generation_lazily_drops_stale_entries(self):
        cache, registry = self._cache(max_entries=4)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.bump_generation()
        assert len(cache) == 2  # nothing freed eagerly
        assert "a" not in cache
        assert cache.get("a") is None  # dropped on lookup, counted
        assert registry.counter("c_stale_drops_total").total() == 1
        assert registry.counter("c_generation_bumps_total").total() == 1
        cache.put("a", 3)
        assert cache.get("a") == 3  # fresh entries live at the new gen

    def test_keys_exclude_stale_entries(self):
        cache, _ = self._cache(max_entries=4)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.keys() == ("a", "b")
        cache.mark_stale("a")
        assert cache.keys() == ("b",)
        assert cache.get("b") == 2

    def test_mark_stale_is_scoped_to_one_key(self):
        cache, registry = self._cache(max_entries=4)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.mark_stale("a")
        assert not cache.mark_stale("missing")
        assert cache.get("a") is None
        assert cache.get("b") == 2
        assert registry.counter("c_stale_drops_total").total() == 1

    def test_patch_repairs_in_place_and_counts(self):
        cache, registry = self._cache(max_entries=4)
        box = {"v": 1}
        cache.put("a", box)

        def bump(value):
            value["v"] += 10
            return True

        assert cache.patch("a", bump)
        assert cache.get("a")["v"] == 11
        assert registry.counter("c_patches_total").total() == 1

    def test_patch_skip_protocol_and_stale_keys(self):
        cache, registry = self._cache(max_entries=4)
        cache.put("a", object())
        assert not cache.patch("a", lambda _v: False)  # alias skip
        assert not cache.patch("missing", lambda _v: True)
        cache.bump_generation()
        assert not cache.patch("a", lambda _v: True)  # stale: fn not run
        assert registry.counter("c_patches_total").total() == 0

    def test_stale_weight_is_released_on_drop(self):
        cache, _ = self._cache(max_entries=4, weigh=lambda v: v)
        cache.put("a", 10.0)
        cache.bump_generation()
        assert cache.weight == 10.0
        cache.get("a")
        assert cache.weight == 0.0


class TestRangeEnginePatch:
    def test_patched_intermediates_match_fresh_engine(self):
        shape = CubeShape((8, 8))
        rng = np.random.default_rng(13)
        base = rng.integers(0, 50, size=shape.sizes).astype(np.float64)
        materialized = MaterializedSet.from_cube(base.copy(), [shape.root()])
        engine = RangeQueryEngine(materialized)
        ranges = ((1, 7), (2, 6))
        engine.range_sum(ranges)  # warms on-demand intermediates
        assert engine._cache

        coords = np.array([[3, 3], [0, 7], [6, 2]])
        deltas = np.array([4.0, -2.0, 9.0])
        materialized.apply_updates(coords, deltas)
        np.add.at(base, tuple(coords.T), deltas)
        patched = engine.apply_updates(coords, deltas)
        assert patched == len(engine._cache)

        fresh = RangeQueryEngine(
            MaterializedSet.from_cube(base.copy(), [shape.root()])
        )
        for probe in (ranges, ((0, 8), (0, 8)), ((3, 5), (1, 8))):
            assert (
                engine.range_sum(probe).value
                == fresh.range_sum(probe).value
            )

    def test_validation_and_empty_batch(self):
        shape = CubeShape((4, 4))
        engine = RangeQueryEngine(
            MaterializedSet.from_cube(np.zeros(shape.sizes), [shape.root()])
        )
        with pytest.raises(ValueError, match="deltas must be"):
            engine.apply_updates(np.array([[0, 0]]), [1.0, 2.0])
        assert engine.apply_updates(np.empty((0, 2), dtype=np.int64), []) == 0


class TestShardedBatchRouting:
    def _sharded(self, sizes=(8, 8), shards=4, seed=17):
        rng = np.random.default_rng(seed)
        base = rng.integers(0, 50, size=sizes).astype(np.float64)
        shape = CubeShape(sizes)
        partition = CubePartition.for_shape(shape, shards)
        sharded = ShardedSet(partition, base_values=base)
        sharded.store(shape.root(), base)
        return sharded, base, shape

    def test_bulk_matches_single_cell_routing(self):
        sharded, base, shape = self._sharded()
        single, _, _ = self._sharded()
        rng = np.random.default_rng(19)
        coords = np.stack(
            [rng.integers(0, n, size=10) for n in shape.sizes], axis=1
        )
        deltas = rng.integers(-5, 6, size=10).astype(np.float64)
        sharded.apply_updates(coords, deltas)
        for row, delta in zip(coords, deltas):
            single.apply_update(tuple(int(c) for c in row), float(delta))
        assert (
            sharded.assemble(shape.root()).tobytes()
            == single.assemble(shape.root()).tobytes()
        )

    def test_only_owning_shards_bump_epochs(self):
        sharded, _, shape = self._sharded(shards=4)
        axis = sharded.partition.axis
        extent = sharded.partition.shard_extent
        before = sharded.epochs
        # All deltas land in shard 2's slab of the shard axis.
        coords = np.zeros((3, len(shape.sizes)), dtype=np.int64)
        coords[:, axis] = 2 * extent
        sharded.apply_updates(coords, [1.0, 2.0, 3.0])
        after = sharded.epochs
        assert after[2] == before[2] + 1
        assert [a for i, a in enumerate(after) if i != 2] == [
            b for i, b in enumerate(before) if i != 2
        ]

    def test_validation_and_empty_batch(self):
        sharded, _, _ = self._sharded()
        with pytest.raises(ValueError, match="outside"):
            sharded.apply_updates(np.array([[0, 99]]), [1.0])
        with pytest.raises(ValueError, match="deltas must be"):
            sharded.apply_updates(np.array([[0, 0]]), [1.0, 2.0])
        before = sharded.epochs
        sharded.apply_updates(np.empty((0, 2), dtype=np.int64), [])
        assert sharded.epochs == before

    def test_array_refs_is_empty(self):
        sharded, _, _ = self._sharded()
        assert sharded.array_refs() == {}


def _make_server(sizes=(8, 16), seed=29, **kwargs):
    rng = np.random.default_rng(seed)
    values = rng.integers(0, 50, size=sizes).astype(np.float64)
    dims = [Dimension(f"d{i}", list(range(n))) for i, n in enumerate(sizes)]
    return (
        OLAPServer(DataCube(values.copy(), dims, measure="m"), **kwargs),
        values,
    )


class TestServerUpdatePath:
    def test_warm_cache_is_patched_not_cleared(self):
        server, base = _make_server()
        server.view(["d0"])
        server.view(["d1"])
        server.range_sum(((1, 7), (3, 13)))
        server.update(5.0, d0=3, d1=9)
        server.update_many(np.array([[0, 0], [7, 15]]), [1.0, -2.0])
        ref = base.copy()
        ref[3, 9] += 5.0
        ref[0, 0] += 1.0
        ref[7, 15] += -2.0
        assert np.array_equal(server.cube.values, ref)
        assert np.array_equal(
            server.view(["d0"]).ravel(), ref.sum(axis=1)
        )
        assert server.range_sum(((1, 7), (3, 13))) == ref[1:7, 3:13].sum()
        health = server.health()
        assert health["updates"] == 3
        assert health["updates_cache_patched"] > 0
        assert health["updates_cache_cleared"] == 0
        # The result cache was never wholesale-cleared.
        assert (
            server.metrics.counter("view_cache_clears_total").total() == 0
        )

    def test_update_many_accepts_mappings(self):
        server, base = _make_server()
        server.update_many([{"d0": 2, "d1": 4}, {"d0": 2, "d1": 4}], [3.0, 1.0])
        assert server.cube.values[2, 4] == base[2, 4] + 4.0

    def test_update_many_validates(self):
        server, _ = _make_server()
        with pytest.raises(ValueError, match="outside"):
            server.update_many(np.array([[0, 99]]), [1.0])
        with pytest.raises(ValueError, match="deltas must be"):
            server.update_many(np.array([[0, 0]]), [1.0, 2.0])
        server.update_many(np.empty((0, 2), dtype=np.int64), [])  # no-op

    def test_stored_aliases_are_not_double_patched(self):
        # The root is stored; a full-cube view serves the stored array by
        # reference and caches that same object.  The patcher must skip
        # it — apply_updates already repaired storage — or the delta
        # would land twice.
        server, base = _make_server()
        full = server.view(["d0", "d1"])
        server.update(7.0, d0=1, d1=2)
        ref = base.copy()
        ref[1, 2] += 7.0
        assert np.array_equal(server.view(["d0", "d1"]), ref)
        assert np.array_equal(full, ref)  # same live array, patched once

    def test_clear_policy_restores_legacy_behaviour(self):
        server, base = _make_server(update_policy="clear")
        server.view(["d0"])
        server.update(2.0, d0=1, d1=1)
        health = server.health()
        assert health["updates_cache_cleared"] == 1
        assert health["updates_cache_patched"] == 0
        ref = base.copy()
        ref[1, 1] += 2.0
        assert np.array_equal(server.view(["d0"]).ravel(), ref.sum(axis=1))

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="update_policy"):
            _make_server(update_policy="nuke")

    def test_sharded_update_leaves_other_shards_warm(self):
        server, base = _make_server(sizes=(8, 16), shards=4)
        server.view(["d0"])
        before = server.materialized.epochs
        server.update(3.0, d0=0, d1=1)  # shard axis 1, owner shard 0
        after = server.materialized.epochs
        assert after[0] == before[0] + 1
        assert after[1:] == before[1:]
        ref = base.copy()
        ref[0, 1] += 3.0
        assert np.array_equal(server.view(["d0"]).ravel(), ref.sum(axis=1))
        assert server.health()["updates_cache_cleared"] == 0

    def test_patch_failure_falls_back_to_coarse(self, monkeypatch):
        server, base = _make_server()
        server.view(["d0"])
        monkeypatch.setattr(
            type(server._state.range_engine),
            "apply_updates",
            lambda *a, **k: (_ for _ in ()).throw(RuntimeError("boom")),
        )
        server.update(4.0, d0=2, d1=2)
        health = server.health()
        assert health["updates_cache_cleared"] == 1
        ref = base.copy()
        ref[2, 2] += 4.0
        # Coarse fallback is cold but still correct.
        assert np.array_equal(server.view(["d0"]).ravel(), ref.sum(axis=1))
