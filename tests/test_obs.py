"""Tests for the observability layer (metrics, tracing, cache, reporting)."""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs import (
    LRUCache,
    MetricsRegistry,
    Observability,
    Tracer,
    current_registry,
    current_tracer,
    default_registry,
    span,
)
from repro.obs.reporting import render_json, render_text, stats_payload


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        registry = MetricsRegistry()
        c = registry.counter("queries_total")
        assert c.value() == 0
        c.inc()
        c.inc(2)
        assert c.value() == 3

    def test_labels_are_independent_series(self):
        registry = MetricsRegistry()
        c = registry.counter("queries_total")
        c.inc(kind="view")
        c.inc(kind="view")
        c.inc(kind="range")
        assert c.value(kind="view") == 2
        assert c.value(kind="range") == 1
        assert c.value() == 0  # unlabelled series untouched
        assert c.total() == 3

    def test_decrease_rejected(self):
        c = MetricsRegistry().counter("n")
        with pytest.raises(ValueError, match="cannot decrease"):
            c.inc(-1)

    def test_idempotent_creation_and_kind_clash(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            registry.gauge("x")


class TestGaugeAndHistogram:
    def test_gauge_set_and_adjust(self):
        g = MetricsRegistry().gauge("size")
        g.set(5)
        g.inc(-2)
        assert g.value() == 3

    def test_histogram_summary(self):
        h = MetricsRegistry().histogram("ops")
        for v in (1, 2, 9):
            h.observe(v)
        stats = h.stats()
        assert stats["count"] == 3
        assert stats["sum"] == 12
        assert stats["min"] == 1
        assert stats["max"] == 9
        assert stats["mean"] == 4

    def test_empty_histogram_stats(self):
        assert MetricsRegistry().histogram("ops").stats()["count"] == 0

    def test_thread_safety_under_contention(self):
        registry = MetricsRegistry()
        c = registry.counter("n")

        def work():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value() == 4000


class TestRegistryContext:
    def test_default_registry_is_fallback(self):
        assert current_registry() is default_registry()

    def test_activation_nests(self):
        outer, inner = MetricsRegistry(), MetricsRegistry()
        with outer.activate():
            assert current_registry() is outer
            with inner.activate():
                assert current_registry() is inner
            assert current_registry() is outer
        assert current_registry() is default_registry()

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("a", "a counter").inc(kind="x")
        registry.histogram("h").observe(2.0)
        snap = registry.snapshot()
        assert snap["a"]["type"] == "counter"
        assert snap["a"]["description"] == "a counter"
        assert snap["a"]["values"] == {"kind=x": 1.0}
        assert snap["h"]["values"][""]["count"] == 1


class TestTracing:
    def test_span_records_parent_and_attributes(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner", depth=1) as inner:
                inner.set(extra="yes")
        spans = tracer.spans()
        assert [s.name for s in spans] == ["inner", "outer"]
        inner, outer = spans
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert inner.attributes == {"depth": 1, "extra": "yes"}
        assert inner.duration >= 0
        assert inner.end is not None

    def test_module_helper_noops_without_tracer(self):
        assert current_tracer() is None
        with span("orphan") as s:
            s.set(ignored=True)  # must not raise

    def test_module_helper_routes_to_active_tracer(self):
        tracer = Tracer()
        with tracer.activate():
            assert current_tracer() is tracer
            with span("work", operations=7):
                pass
        assert tracer.spans("work")[0].attributes["operations"] == 7

    def test_ring_buffer_bounded(self):
        tracer = Tracer(max_spans=3)
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        assert [s.name for s in tracer.spans()] == ["s2", "s3", "s4"]

    def test_summary_aggregates_operations(self):
        tracer = Tracer()
        with tracer.activate():
            for ops in (3, 4):
                with span("q", operations=ops):
                    pass
        summary = tracer.summary()
        assert summary["q"]["count"] == 2
        assert summary["q"]["operations"] == 7
        assert summary["q"]["mean_ms"] >= 0


class TestLRUCache:
    def test_hit_miss_metrics(self):
        registry = MetricsRegistry()
        cache = LRUCache(max_entries=2, registry=registry, name="c")
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert registry.get("c_hits_total").value() == 1
        assert registry.get("c_misses_total").value() == 1
        assert cache.hit_rate == 0.5

    def test_lru_eviction_order(self):
        registry = MetricsRegistry()
        cache = LRUCache(max_entries=2, registry=registry, name="c")
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh "a": "b" is now LRU
        cache.put("c", 3)
        assert "b" not in cache
        assert cache.keys() == ("a", "c")
        assert registry.get("c_evictions_total").value() == 1

    def test_weight_bound(self):
        registry = MetricsRegistry()
        cache = LRUCache(
            max_entries=10,
            max_weight=10,
            weigh=len,
            registry=registry,
            name="c",
        )
        cache.put("a", [0] * 6)
        cache.put("b", [0] * 6)  # 12 > 10: evicts "a"
        assert "a" not in cache and "b" in cache
        assert cache.weight == 6
        cache.put("big", [0] * 99)  # heavier than the whole budget
        assert "big" not in cache

    def test_clear_counts_separately(self):
        registry = MetricsRegistry()
        cache = LRUCache(max_entries=4, registry=registry, name="c")
        cache.put("a", 1)
        cache.clear()
        assert len(cache) == 0
        assert registry.get("c_clears_total").value() == 1
        assert registry.get("c_evictions_total").value() == 0
        assert registry.get("c_size").value() == 0

    def test_put_refreshes_existing_key(self):
        cache = LRUCache(max_entries=2, registry=MetricsRegistry())
        cache.put("a", 1)
        cache.put("a", 2)
        assert cache.get("a") == 2
        assert len(cache) == 1


class TestObservability:
    def test_activation_routes_both(self):
        obs = Observability()
        with obs.activate():
            assert current_registry() is obs.registry
            assert current_tracer() is obs.tracer
            with span("x", operations=1):
                current_registry().counter("n").inc()
        assert obs.registry.get("n").value() == 1
        assert obs.tracer.spans("x")

    def test_reset(self):
        obs = Observability()
        obs.registry.counter("n").inc()
        with obs.tracer.span("x"):
            pass
        obs.reset()
        assert obs.registry.names() == ()
        assert obs.tracer.spans() == ()


class TestReporting:
    def _populated(self) -> Observability:
        obs = Observability()
        obs.registry.counter("queries_total", "queries").inc(kind="view")
        obs.registry.histogram("ops").observe(5)
        with obs.tracer.span("server.query", operations=5):
            pass
        return obs

    def test_json_round_trips(self):
        obs = self._populated()
        payload = json.loads(render_json(obs.registry, obs.tracer))
        assert payload["metrics"]["queries_total"]["values"] == {
            "kind=view": 1.0
        }
        assert payload["spans"][0]["name"] == "server.query"
        assert payload["spans"][0]["attributes"]["operations"] == 5
        assert payload["span_summary"]["server.query"]["operations"] == 5

    def test_payload_without_tracer(self):
        obs = self._populated()
        assert "spans" not in stats_payload(obs.registry)

    def test_text_contains_sections(self):
        obs = self._populated()
        text = render_text(obs.registry, obs.tracer)
        assert "metrics" in text
        assert "queries_total" in text
        assert "histograms" in text
        assert "server.query" in text

    def test_text_empty_registry(self):
        assert "no metrics" in render_text(MetricsRegistry())