"""Unit and property tests for the partial aggregation operators (paper §3)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.operators import (
    OpCounter,
    analyze,
    partial_residual,
    partial_sum,
    partial_sum_k,
    synthesize,
    total_aggregate,
    total_sum,
)


def _pow2_arrays(max_side: int = 8, max_dims: int = 3):
    """Hypothesis strategy: float arrays with power-of-two extents."""
    sides = st.sampled_from([2, 4, 8][: max(1, max_side // 4 + 1)])
    shapes = st.lists(sides, min_size=1, max_size=max_dims).map(tuple)
    return shapes.flatmap(
        lambda shp: hnp.arrays(
            dtype=np.float64,
            shape=shp,
            elements=st.integers(min_value=-1000, max_value=1000).map(float),
        )
    )


class TestPartialSum:
    def test_pairs_1d(self):
        a = np.array([1.0, 2.0, 3.0, 4.0])
        assert partial_sum(a, 0).tolist() == [3.0, 7.0]

    def test_axis_selection_2d(self):
        a = np.arange(8, dtype=float).reshape(2, 4)
        np.testing.assert_array_equal(partial_sum(a, 0), (a[0] + a[1])[None, :])
        np.testing.assert_array_equal(
            partial_sum(a, 1), np.array([[1.0, 5.0], [9.0, 13.0]])
        )

    def test_negative_axis(self):
        a = np.arange(8, dtype=float).reshape(2, 4)
        np.testing.assert_array_equal(partial_sum(a, -1), partial_sum(a, 1))

    def test_odd_extent_rejected(self):
        with pytest.raises(ValueError, match="even extent"):
            partial_sum(np.zeros((3, 2)), 0)

    def test_extent_one_rejected(self):
        with pytest.raises(ValueError, match="even extent"):
            partial_sum(np.zeros((1, 2)), 0)

    def test_counter_counts_output_size(self):
        counter = OpCounter()
        partial_sum(np.zeros((4, 4)), 0, counter=counter)
        assert counter.additions == 8
        assert counter.subtractions == 0


class TestArgumentValidation:
    """Regression: bad axes/extents fail with messages naming the problem."""

    @pytest.mark.parametrize("op", [partial_sum, partial_residual])
    def test_odd_extent_message_names_axis_and_extent(self, op):
        with pytest.raises(
            ValueError,
            match=r"axis 1 has extent 3; partial aggregation requires an "
            r"even extent of at least 2",
        ):
            op(np.zeros((4, 3)), 1)

    @pytest.mark.parametrize("op", [partial_sum, partial_residual])
    def test_odd_extent_on_negative_axis_reports_normalized_axis(self, op):
        with pytest.raises(ValueError, match=r"axis 1 has extent 5"):
            op(np.zeros((2, 5)), -1)

    @pytest.mark.parametrize("op", [partial_sum, partial_residual])
    def test_out_of_range_axis_rejected(self, op):
        # Previously axis 5 silently wrapped onto axis 1 (5 % ndim).
        with pytest.raises(
            ValueError, match=r"axis 5 is out of bounds for a 2-dimensional"
        ):
            op(np.zeros((4, 4)), 5)

    @pytest.mark.parametrize("op", [partial_sum, partial_residual])
    def test_zero_dimensional_rejected(self, op):
        with pytest.raises(ValueError, match="0-dimensional"):
            op(np.asarray(3.0), 0)


class TestPartialResidual:
    def test_differences_1d(self):
        a = np.array([5.0, 2.0, 7.0, 7.0])
        assert partial_residual(a, 0).tolist() == [3.0, 0.0]

    def test_counter_counts_subtractions(self):
        counter = OpCounter()
        partial_residual(np.zeros((4, 4)), 1, counter=counter)
        assert counter.subtractions == 8
        assert counter.additions == 0


class TestPerfectReconstruction:
    """Property 1 (Eqs 3-4)."""

    @settings(max_examples=50, deadline=None)
    @given(_pow2_arrays())
    def test_round_trip_each_axis(self, a):
        for axis in range(a.ndim):
            p, r = analyze(a, axis)
            np.testing.assert_allclose(synthesize(p, r, axis), a)

    def test_integer_exactness(self, rng):
        a = rng.integers(-(2**40), 2**40, size=(8, 4)).astype(np.float64)
        p, r = analyze(a, 0)
        np.testing.assert_array_equal(synthesize(p, r, 0), a)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shapes differ"):
            synthesize(np.zeros(2), np.zeros(4), 0)

    def test_synthesize_counter(self):
        counter = OpCounter()
        synthesize(np.zeros((2, 4)), np.zeros((2, 4)), 0, counter=counter)
        # Volume of the output: 16 cells -> 8 additions + 8 subtractions.
        assert counter.additions == 8
        assert counter.subtractions == 8


class TestNonExpansiveness:
    """Property 3 (Eqs 11-13)."""

    @settings(max_examples=30, deadline=None)
    @given(_pow2_arrays())
    def test_volume_preserved(self, a):
        for axis in range(a.ndim):
            p, r = analyze(a, axis)
            assert p.size + r.size == a.size


class TestDistributivity:
    """Property 2 (Eqs 5-8): cascades compute the k-th partial sums."""

    def test_pk_equals_block_sums(self, rng):
        a = rng.integers(0, 50, size=(16,)).astype(float)
        for k in range(5):
            expected = a.reshape(-1, 2**k).sum(axis=1)
            np.testing.assert_array_equal(partial_sum_k(a, 0, k), expected)

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            partial_sum_k(np.zeros(4), 0, -1)


class TestSeparability:
    """Property 4 (Eq 14): operators on different dimensions commute."""

    @settings(max_examples=30, deadline=None)
    @given(_pow2_arrays(max_dims=3))
    def test_axis_order_irrelevant(self, a):
        if a.ndim < 2:
            return
        ab = partial_sum(partial_sum(a, 0), 1)
        ba = partial_sum(partial_sum(a, 1), 0)
        np.testing.assert_allclose(ab, ba)

    def test_residual_partial_commute(self, rng):
        a = rng.integers(0, 9, size=(4, 8)).astype(float)
        pr = partial_residual(partial_sum(a, 0), 1)
        rp = partial_sum(partial_residual(a, 1), 0)
        np.testing.assert_array_equal(pr, rp)


class TestTotalAggregation:
    def test_total_sum_matches_numpy(self, rng):
        a = rng.integers(0, 9, size=(8, 4)).astype(float)
        np.testing.assert_allclose(
            total_sum(a, 0)[0], a.sum(axis=0), rtol=0, atol=0
        )

    def test_total_aggregate_grand_total(self, rng):
        a = rng.integers(0, 9, size=(8, 4, 2)).astype(float)
        out = total_aggregate(a, (0, 1, 2))
        assert out.shape == (1, 1, 1)
        assert out[0, 0, 0] == a.sum()

    def test_total_sum_rejects_non_power_of_two(self):
        # A non-power-of-two extent cannot arise from CubeShape, but the
        # operator itself must reject it.
        a = np.zeros((6, 2))
        with pytest.raises(ValueError, match="not a power of two"):
            total_sum(a, 0)

    def test_total_aggregate_cost_matches_model(self, rng):
        """Aggregating A to a view costs Vol(A) - Vol(view) (Eq 28)."""
        a = rng.integers(0, 9, size=(8, 4, 2)).astype(float)
        counter = OpCounter()
        out = total_aggregate(a, (0, 2), counter=counter)
        assert counter.total == a.size - out.size


class TestOpCounter:
    def test_accumulates_and_resets(self):
        counter = OpCounter()
        counter.add(additions=3, subtractions=2, label="x")
        counter.add(additions=1)
        assert counter.total == 6
        assert counter.events == [("x", 3, 2)]
        counter.reset()
        assert counter.total == 0
        assert counter.events == []


class TestOutBuffers:
    """The ``out=`` surface added for the buffer-pool executor."""

    def test_partial_sum_writes_into_out(self, rng):
        a = rng.standard_normal((4, 4))
        out = np.empty((2, 4))
        result = partial_sum(a, 0, out=out)
        assert result is out
        np.testing.assert_array_equal(out, partial_sum(a, 0))

    def test_partial_residual_writes_into_out(self, rng):
        a = rng.standard_normal((4, 4))
        out = np.empty((4, 2))
        result = partial_residual(a, 1, out=out)
        assert result is out
        np.testing.assert_array_equal(out, partial_residual(a, 1))

    def test_out_shape_mismatch_rejected(self, rng):
        a = rng.standard_normal((4, 4))
        with pytest.raises(ValueError, match="does not match result shape"):
            partial_sum(a, 0, out=np.empty((4, 4)))

    def test_synthesize_writes_into_out(self, rng):
        a = rng.standard_normal((4, 4))
        p, r = analyze(a, 1)
        out = np.empty((4, 4))
        result = synthesize(p, r, 1, out=out)
        assert result is out
        np.testing.assert_array_equal(out, synthesize(p, r, 1))

    def test_synthesize_out_validation(self, rng):
        a = rng.standard_normal((4, 4))
        p, r = analyze(a, 1)
        with pytest.raises(ValueError, match="C-contiguous float64"):
            synthesize(p, r, 1, out=np.empty((2, 4)))
        with pytest.raises(ValueError, match="C-contiguous float64"):
            synthesize(p, r, 1, out=np.empty((4, 4), dtype=np.float32))
        with pytest.raises(ValueError, match="C-contiguous float64"):
            synthesize(p, r, 1, out=np.empty((4, 8))[:, ::2])

    def test_noncontiguous_input_no_copy(self, rng):
        """Strided even/odd slicing handles transposed inputs without the
        intermediate copy a pair reshape would force — same answers."""
        base = rng.standard_normal((4, 8))
        a = base.T  # non-contiguous view
        np.testing.assert_array_equal(partial_sum(a, 0), (base[:, 0::2] + base[:, 1::2]).T)
        np.testing.assert_array_equal(partial_residual(a, 0), (base[:, 0::2] - base[:, 1::2]).T)

    def test_error_taxonomy_unchanged_with_out(self):
        """The pre-existing ValueError messages survive the out= addition."""
        with pytest.raises(ValueError, match="even extent"):
            partial_sum(np.zeros((3, 2)), 0, out=np.empty((1, 2)))
        with pytest.raises(ValueError, match="out of bounds"):
            partial_residual(np.zeros((2, 2)), 5, out=np.empty((1, 2)))
