"""Tests for Procedure 3 and Algorithm 2 (paper §5.3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.element import CubeShape, ElementId
from repro.core.population import QueryPopulation
from repro.core.select_basis import select_minimum_cost_basis
from repro.core.select_redundant import (
    generation_cost,
    greedy_redundant_selection,
    total_processing_cost,
)


class TestGenerationCost:
    def test_selected_is_free(self, shape_4x4):
        root = shape_4x4.root()
        assert generation_cost(root, [root]) == 0.0

    def test_aggregation_from_ancestor(self, shape_4x4):
        root = shape_4x4.root()
        view = shape_4x4.aggregated_view([0, 1])
        assert generation_cost(view, [root]) == 15.0  # 16 - 1

    def test_smallest_ancestor_wins(self, shape_4x4):
        root = shape_4x4.root()
        mid = shape_4x4.aggregated_view([0])  # vol 4
        total = shape_4x4.total_aggregation()
        assert generation_cost(total, [root, mid]) == 3.0  # 4 - 1

    def test_synthesis_route(self, shape_4x4):
        """A parent rebuilt from its two children costs its volume."""
        root = shape_4x4.root()
        p, r = root.children(0)
        assert generation_cost(root, [p, r]) == 16.0

    def test_incomplete_is_infinite(self, shape_4x4):
        p = shape_4x4.root().partial_child(0)
        assert generation_cost(shape_4x4.root(), [p]) == float("inf")

    def test_pedagogical_route(self):
        """Section 7.1: {V1, V5, V6} generates V7 at cost 3."""
        from repro.experiments.table2 import pedagogical_elements

        e = pedagogical_elements()
        selected = [e["V1"], e["V5"], e["V6"]]
        assert generation_cost(e["V7"], selected) == 3.0
        assert generation_cost(e["V1"], selected) == 0.0

    def test_mixed_aggregation_synthesis(self, shape_4x4):
        """Synthesis children may themselves come from aggregation."""
        root = shape_4x4.root()
        p0 = root.partial_child(0)
        r0 = root.residual_child(0)
        # p0 aggregated from root-stored? No root; store p0's children
        # and r0 directly: root = synth(p0, r0), p0 = synth(its children).
        pp, pr = p0.children(1)
        cost = generation_cost(root, [pp, pr, r0])
        # p0 costs 8 (synthesis), root costs 16 + 8 + 0.
        assert cost == 24.0


class TestTotalProcessingCost:
    def test_weighted_sum(self, shape_4x4):
        views = list(shape_4x4.aggregated_views())
        population = QueryPopulation.from_pairs(
            [(views[1], 0.5), (views[3], 0.5)]
        )
        root = shape_4x4.root()
        expected = 0.5 * generation_cost(views[1], [root]) + 0.5 * generation_cost(
            views[3], [root]
        )
        assert total_processing_cost([root], population) == pytest.approx(expected)

    def test_all_views_stored_is_zero(self, shape_4x4):
        views = list(shape_4x4.aggregated_views())
        population = QueryPopulation.uniform_over_views(shape_4x4)
        assert total_processing_cost(views, population) == 0.0

    def test_never_exceeds_additive_basis_cost(self, shape_4x4, rng):
        """Procedure 3 takes cheapest routes, so it lower-bounds the
        additive model on the same non-redundant basis."""
        from repro.core.costs import basis_population_cost

        population = QueryPopulation.random_over_views(shape_4x4, rng)
        basis = select_minimum_cost_basis(shape_4x4, population).elements
        assert total_processing_cost(basis, population) <= (
            basis_population_cost(basis, population) + 1e-9
        )


class TestGreedy:
    def test_monotone_cost_and_budget(self, shape_4x4, rng):
        population = QueryPopulation.random_over_views(shape_4x4, rng)
        basis = select_minimum_cost_basis(shape_4x4, population)
        budget = 1.5 * shape_4x4.volume
        result = greedy_redundant_selection(
            list(basis.elements), population, storage_budget=budget
        )
        costs = [s.cost for s in result.stages]
        assert costs == sorted(costs, reverse=True)
        assert all(s.storage <= budget for s in result.stages)
        assert result.final_cost <= costs[0]

    def test_view_candidates_only(self, shape_4x4, rng):
        population = QueryPopulation.random_over_views(shape_4x4, rng)
        views = list(shape_4x4.aggregated_views())
        result = greedy_redundant_selection(
            [shape_4x4.root()],
            population,
            storage_budget=(4 + 1) ** 2,
            candidates=views,
        )
        assert set(result.selected) <= set(views)
        assert result.final_cost == pytest.approx(0.0)

    def test_zero_budget_headroom_adds_nothing(self, shape_4x4, rng):
        population = QueryPopulation.random_over_views(shape_4x4, rng)
        result = greedy_redundant_selection(
            [shape_4x4.root()],
            population,
            storage_budget=shape_4x4.volume,  # no headroom
        )
        assert len(result.stages) == 1
        assert result.stages[0].added is None

    def test_remove_obsolete_frees_storage(self, shape_4x4):
        """After adding the sole hot view, the basis fragments covering it
        become removable."""
        view = shape_4x4.aggregated_view([0])
        population = QueryPopulation.from_pairs([(view, 1.0)])
        start = list(shape_4x4.root().children(0))  # basis of two halves
        result = greedy_redundant_selection(
            start,
            population,
            storage_budget=shape_4x4.volume + view.volume,
            remove_obsolete=True,
        )
        assert result.final_cost == 0.0
        # The halves are NOT obsolete (cost stays 0 either way only if the
        # query view is kept); at minimum the selection is smaller than
        # start + view.
        assert result.final_storage <= shape_4x4.volume + view.volume

    def test_stage_normalization(self, shape_4x4, rng):
        population = QueryPopulation.random_over_views(shape_4x4, rng)
        result = greedy_redundant_selection(
            [shape_4x4.root()], population, storage_budget=24,
        )
        storage, cost = result.stages[0].normalized(shape_4x4.volume)
        assert storage == pytest.approx(1.0)
        assert cost == result.stages[0].cost


class TestEngineDelegation:
    """``engine="auto"`` hands large graphs to the vectorized engine."""

    def _setting(self, shape_4x4, rng):
        population = QueryPopulation.random_over_views(shape_4x4, rng)
        basis = select_minimum_cost_basis(shape_4x4, population)
        return list(basis.elements), population

    def test_auto_delegates_above_threshold(self, shape_4x4, rng, monkeypatch):
        import repro.core.select_redundant as sr

        initial, population = self._setting(shape_4x4, rng)
        budget = 1.5 * shape_4x4.volume
        reference = greedy_redundant_selection(
            initial, population, budget, engine="reference"
        )
        # Force delegation on this small shape and check the trajectories
        # agree stage by stage.
        monkeypatch.setattr(sr, "ENGINE_DELEGATION_THRESHOLD", 0)
        delegated = greedy_redundant_selection(
            initial, population, budget, engine="auto"
        )
        assert delegated.final_storage == reference.final_storage
        assert delegated.final_cost == pytest.approx(reference.final_cost)
        assert len(delegated.stages) == len(reference.stages)
        for ours, theirs in zip(delegated.stages, reference.stages):
            assert ours.added == theirs.added
            assert ours.storage == theirs.storage
            assert ours.cost == pytest.approx(theirs.cost)

    def test_auto_stays_reference_below_threshold(self, shape_4x4, rng):
        """Small shapes (49 elements) never delegate under the default."""
        import repro.core.select_redundant as sr

        assert shape_4x4.num_view_elements() <= sr.ENGINE_DELEGATION_THRESHOLD

    def test_explicit_vectorized_matches_reference(self, shape_4x4, rng):
        initial, population = self._setting(shape_4x4, rng)
        budget = 1.5 * shape_4x4.volume
        reference = greedy_redundant_selection(
            initial, population, budget, engine="reference"
        )
        vectorized = greedy_redundant_selection(
            initial, population, budget, engine="vectorized"
        )
        assert vectorized.final_cost == pytest.approx(reference.final_cost)
        assert [s.added for s in vectorized.stages] == [
            s.added for s in reference.stages
        ]

    def test_unknown_engine_rejected(self, shape_4x4, rng):
        initial, population = self._setting(shape_4x4, rng)
        with pytest.raises(ValueError, match="unknown engine"):
            greedy_redundant_selection(
                initial, population, 2 * shape_4x4.volume, engine="numpy"
            )
