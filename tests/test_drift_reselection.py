"""The CostModelMonitor -> re-selection loop under synthetic drift.

The soak harness's :class:`~repro.soak.AdaptationLoop` closes the
feedback loop between measured execution and the paper's dynamic
re-selection: planned-vs-measured profiles feed a
:class:`~repro.core.adaptive.CostModelMonitor`, and a tripped monitor
calls ``server.reconfigure()``.  These tests drive the loop with a
deterministic synthetic drift — a phase of model-exact profiles followed
by a hot-key shift that makes every query cost 1.5x its plan — and pin
down the contract: exactly one re-selection, at the analytically
predictable batch, with the epoch bumped, the divergence following the
decayed-mean law, and the loop converging (never re-tripping) once the
new configuration matches the model again.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cube.datacube import DataCube
from repro.cube.dimensions import Dimension
from repro.server import OLAPServer
from repro.soak import AdaptationLoop

TOLERANCE = 0.25
DECAY = 0.9
#: Divergence the drifted profiles report: measured = 1.5x planned.
DRIFT_RATIO = 1.5


def make_server() -> OLAPServer:
    sizes = (8, 4, 2)
    rng = np.random.default_rng(7)
    values = rng.integers(0, 50, size=sizes).astype(np.float64)
    dims = [
        Dimension(f"d{i}", list(range(n))) for i, n in enumerate(sizes)
    ]
    server = OLAPServer(DataCube(values, dims, measure="amount"))
    # Give the access tracker a workload so reconfigure() has an observed
    # population to re-select for.
    for dims_kept in (["d0"], ["d0", "d1"], ["d1"], ["d0"]):
        server.view(dims_kept)
    return server


def profile(planned: float, measured: float, nodes: int = 4) -> dict:
    """A synthetic planned-vs-measured query profile (totals only)."""
    return {
        "totals": {
            "nodes": nodes,
            "planned": planned,
            "measured": measured,
        },
        "elements": {},
    }


def expected_divergence(k: int) -> float:
    """Decayed mean after ``k`` drifted profiles starting from 1.0.

    ``record`` folds each ratio in as
    ``mean = decay * mean + (1 - decay) * ratio``, so starting from an
    exact phase (mean 1.0), ``k`` profiles at ``DRIFT_RATIO`` give
    ``DRIFT_RATIO - (DRIFT_RATIO - 1) * decay**k``.
    """
    return DRIFT_RATIO - (DRIFT_RATIO - 1.0) * DECAY**k


def first_tripping_batch() -> int:
    """The first ``k`` whose decayed divergence exceeds the tolerance."""
    k = 1
    while expected_divergence(k) - 1.0 <= TOLERANCE:
        k += 1
    return k


class TestExactProfilesNeverTrip:
    def test_no_reselection_on_model_exact_workload(self):
        server = make_server()
        loop = AdaptationLoop(server, tolerance=TOLERANCE, decay=DECAY)
        for _ in range(50):
            assert loop.observe(profile(1000.0, 1000.0)) is False
        assert loop.reconfigurations == []
        assert server.epoch == 0
        assert loop.divergences == [1.0] * 50

    def test_live_profiles_sit_at_unity(self):
        # The real executor's accounting equals the plan on the unfaulted
        # path, so live profiles must behave like the synthetic exact ones.
        server = make_server()
        loop = AdaptationLoop(server, tolerance=TOLERANCE, decay=DECAY)
        server.query_batch([["d0"], ["d1"], ["d0", "d1"]])
        assert loop.observe(server.query_profile()) is False
        assert loop.divergences[-1] == pytest.approx(1.0)


class TestHotKeyShiftReselection:
    def test_drift_triggers_exactly_one_reselection(self):
        server = make_server()
        loop = AdaptationLoop(server, tolerance=TOLERANCE, decay=DECAY)

        # Phase 1: the model is exact; nothing moves.
        for _ in range(10):
            assert loop.observe(profile(1000.0, 1000.0)) is False
        epoch_before = server.epoch

        # Phase 2: hot-key shift — every query now costs 1.5x its plan.
        trip_at = first_tripping_batch()
        tripped = None
        for k in range(1, trip_at + 1):
            if loop.observe(profile(1000.0, DRIFT_RATIO * 1000.0)):
                tripped = k
                break
        assert tripped == trip_at, (
            f"re-selection fired at drifted batch {tripped}, expected the "
            f"decayed mean to cross tolerance at batch {trip_at}"
        )

        # Exactly one re-selection, with the epoch bumped and recorded.
        assert len(loop.reconfigurations) == 1
        assert server.epoch == epoch_before + 1
        record = loop.reconfigurations[0]
        assert record["epoch"] == server.epoch
        assert record["divergence"] > 1.0 + TOLERANCE
        assert record["storage"] > 0
        assert record["expected_cost"] > 0

        # Phase 3: the new configuration matches the model again; the
        # fresh monitor converges and never re-trips.
        for _ in range(30):
            assert loop.observe(profile(1000.0, 1000.0)) is False
        assert len(loop.reconfigurations) == 1
        assert loop.divergences[-1] == pytest.approx(1.0)
        assert loop.monitor.should_reconfigure() is False

    def test_divergence_follows_decayed_mean_law(self):
        server = make_server()
        loop = AdaptationLoop(server, tolerance=TOLERANCE, decay=DECAY)
        for _ in range(10):
            loop.observe(profile(1000.0, 1000.0))
        trip_at = first_tripping_batch()
        for _ in range(trip_at):
            loop.observe(profile(1000.0, DRIFT_RATIO * 1000.0))
        drifted = loop.divergences[10 : 10 + trip_at]
        for k, divergence in enumerate(drifted, start=1):
            assert divergence == pytest.approx(expected_divergence(k)), (
                f"divergence after {k} drifted profiles diverged from the "
                f"decayed-mean law"
            )

    def test_monitor_restarts_after_reselection(self):
        # The post-trip monitor must judge the new configuration on its
        # own telemetry: its divergence starts fresh instead of carrying
        # the tripped value, so a *still*-drifted workload needs fresh
        # evidence before the next re-selection.
        server = make_server()
        loop = AdaptationLoop(server, tolerance=TOLERANCE, decay=DECAY)
        for _ in range(10):
            loop.observe(profile(1000.0, 1000.0))
        for _ in range(first_tripping_batch()):
            loop.observe(profile(1000.0, DRIFT_RATIO * 1000.0))
        assert len(loop.reconfigurations) == 1
        assert loop.monitor.profiles_ingested == 0
        assert loop.monitor.divergence == pytest.approx(1.0)
        # Sustained drift eventually re-trips — but only after the fresh
        # monitor independently accumulates past-tolerance evidence.
        second = 0
        while len(loop.reconfigurations) < 2:
            second += 1
            loop.observe(profile(1000.0, DRIFT_RATIO * 1000.0))
            assert second < 50, "sustained drift never re-tripped"
        # The first drifted profile seeds the fresh monitor's mean at the
        # raw ratio (1.5), already past tolerance - so re-evidence takes
        # one batch, not zero: the trip cannot ride the old monitor.
        assert second >= 1
        assert server.epoch == 2
