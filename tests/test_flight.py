"""Flight recorder: keep decisions, bounded state, diag bundle format.

The recorder is driven through a real :class:`~repro.obs.Tracer` (it is
a finish listener, not a parallel instrumentation path), with spans
opened directly so each test controls exactly what the root looks like:
errored, event-carrying, slow, or healthy.
"""

import json

import pytest

from repro.obs import MetricsRegistry, Tracer, add_span_event
from repro.obs.flight import (
    BUNDLE_FORMAT,
    BUNDLE_REQUIRED_KEYS,
    KEEP_REASONS,
    MANIFEST_REQUIRED_KEYS,
    FlightRecorder,
    load_bundle,
    validate_bundle,
    write_bundle,
)


def make_recorder(**kwargs):
    tracer = Tracer(max_spans=4096)
    recorder = FlightRecorder(tracer, **kwargs)
    return tracer, recorder


def run_trace(tracer, name="serve", kind="view", fail=False, event=None):
    """One two-span trace (root + child) through the recorder."""
    with tracer.activate():
        try:
            with tracer.span(name, kind=kind):
                with tracer.span("inner"):
                    if event:
                        add_span_event(event)
                if fail:
                    raise RuntimeError("boom")
        except RuntimeError:
            pass


class TestKeepDecisions:
    def test_errored_root_is_kept(self):
        tracer, recorder = make_recorder()
        run_trace(tracer, fail=True)
        (trace,) = recorder.kept()
        assert trace.reason == "error"
        assert trace.root_name == "serve"
        assert trace.kind == "view"
        assert len(trace.spans) == 2  # the whole trace, not just the root

    def test_span_event_anywhere_keeps_the_trace(self):
        tracer, recorder = make_recorder()
        run_trace(tracer, event="retry")
        (trace,) = recorder.kept()
        assert trace.reason == "event"

    def test_error_outranks_event(self):
        tracer, recorder = make_recorder()
        run_trace(tracer, fail=True, event="retry")
        (trace,) = recorder.kept()
        assert trace.reason == "error"

    def test_head_sampling_keeps_one_in_n(self):
        tracer, recorder = make_recorder(head_sample=8, min_samples=10**9)
        for _ in range(24):
            run_trace(tracer)
        heads = recorder.kept("head")
        assert len(heads) == 3  # roots 1, 9, 17
        assert recorder.traces_seen == 24

    def test_head_sampling_disabled(self):
        tracer, recorder = make_recorder(head_sample=0, min_samples=10**9)
        for _ in range(16):
            run_trace(tracer)
        assert recorder.kept() == ()

    def test_slow_tail_sampling_by_quantile(self):
        import time

        tracer, recorder = make_recorder(
            head_sample=0, min_samples=8, refresh_every=1, slow_quantile=0.9
        )
        for _ in range(12):
            run_trace(tracer)  # fast baseline
        with tracer.activate():
            with tracer.span("serve", kind="view"):
                time.sleep(0.05)  # >> any baseline root
        slows = recorder.kept("slow")
        # Baseline roots near the quantile may also qualify; the genuinely
        # slow outlier must.
        assert any(t.duration_ms >= 50.0 for t in slows)
        key = "serve|view"
        assert key in recorder.snapshot()["slow_thresholds_ms"]

    def test_quantile_is_per_name_kind_site(self):
        # A slow *rollup* must not be judged against *view* latencies:
        # before "rollup" has min_samples of its own, nothing is kept.
        import time

        tracer, recorder = make_recorder(
            head_sample=0, min_samples=8, refresh_every=1
        )
        for _ in range(12):
            run_trace(tracer, kind="view")
        with tracer.activate():
            with tracer.span("serve", kind="rollup"):
                time.sleep(0.02)
        # A jittery baseline *view* root may legitimately cross its own
        # quantile; the isolation claim is only about the rollup.
        assert all(t.kind != "rollup" for t in recorder.kept("slow"))

    def test_kept_counter_lands_in_registry(self):
        registry = MetricsRegistry()
        tracer = Tracer()
        recorder = FlightRecorder(tracer, registry=registry)
        run_trace(tracer, fail=True)
        counter = registry.counter(
            "flight_traces_kept_total", "traces kept",
        )
        assert counter.value(reason="error") == 1
        assert recorder.kept_counts["error"] == 1


class TestBounds:
    def test_kept_ring_evicts_and_counts(self):
        tracer, recorder = make_recorder(max_traces=4)
        for _ in range(10):
            run_trace(tracer, fail=True)
        assert len(recorder.kept()) == 4
        assert recorder.loss()["kept_traces_evicted"] == 6

    def test_pending_traces_are_bounded(self):
        from repro.obs import Span

        _, recorder = make_recorder(max_pending=2)
        # Three in-flight traces whose children finish but whose roots
        # never do: the third sheds the oldest (most likely orphaned).
        for trace_id in (1, 2, 3):
            recorder.on_span(
                Span(name="inner", span_id=trace_id * 10, trace_id=trace_id,
                     parent_id=trace_id)
            )
        assert recorder.loss()["pending_traces_dropped"] == 1
        assert set(recorder._pending) == {2, 3}

    def test_spans_per_trace_are_bounded(self):
        tracer, recorder = make_recorder(max_spans_per_trace=4)
        with tracer.activate():
            with tracer.span("serve", kind="view"):
                for _ in range(10):
                    with tracer.span("inner"):
                        pass
        assert recorder.loss()["trace_spans_dropped"] == 6
        # Head-sampled root 1 keeps what survived the span cap + the root.
        (trace,) = recorder.kept()
        assert len(trace.spans) == 5

    def test_close_detaches_idempotently(self):
        tracer, recorder = make_recorder()
        recorder.close()
        recorder.close()
        run_trace(tracer, fail=True)
        assert recorder.kept() == ()


class TestExemplars:
    def test_problems_first_then_heads(self):
        tracer, recorder = make_recorder(head_sample=1, min_samples=10**9)
        run_trace(tracer)  # head
        run_trace(tracer, fail=True)  # error (also head slot 2, error wins)
        run_trace(tracer, event="retry")
        run_trace(tracer)
        picked = recorder.exemplars(limit=3)
        assert [t.reason for t in picked] == ["event", "error", "head"]

    def test_to_dict_renders_chrome_trace(self):
        tracer, recorder = make_recorder()
        run_trace(tracer, fail=True)
        doc = recorder.kept()[0].to_dict()
        assert doc["reason"] == "error"
        assert doc["spans"] == 2
        assert len(doc["chrome_trace"]["traceEvents"]) >= 2

    def test_health_ring_is_bounded(self):
        _, recorder = make_recorder(max_health=2)
        for i in range(5):
            recorder.note_health({"i": i})
        snaps = recorder.health_snapshots()
        assert [s["i"] for s in snaps] == [3, 4]
        assert all("unix_ts" in s for s in snaps)


def minimal_bundle(tracer=None, recorder=None):
    if recorder is None:
        tracer, recorder = make_recorder()
        run_trace(tracer, fail=True)
    bundle = {key: None for key in BUNDLE_REQUIRED_KEYS}
    bundle.update(
        {
            "trigger": {"kind": "test"},
            "health": {"slo": {"timeout_rate": 0.0}},
            "tuning": {"knobs": []},
            "metrics": {"counters": {}},
            "events_tail": [{"name": "epoch_bump"}],
            "telemetry_loss": recorder.loss(),
            "exemplar_traces": [t.to_dict() for t in recorder.exemplars()],
            "flight": recorder.snapshot(),
        }
    )
    bundle["manifest"] = {
        "bundle_format": BUNDLE_FORMAT,
        "created_unix": 0.0,
        "trigger": "test",
        "contents": sorted(bundle),
    }
    return bundle


class TestBundles:
    def test_file_bundle_round_trips(self, tmp_path):
        bundle = minimal_bundle()
        path = write_bundle(bundle, tmp_path / "diag.json")
        assert path.suffix == ".json"
        loaded = load_bundle(path)
        assert validate_bundle(loaded) == []
        assert loaded["exemplar_traces"][0]["reason"] == "error"

    def test_directory_bundle_round_trips(self, tmp_path):
        bundle = minimal_bundle()
        path = write_bundle(bundle, tmp_path / "diag")
        assert (path / "manifest.json").is_file()
        assert (path / "events.jsonl").is_file()
        traces = sorted(p.name for p in (path / "traces").glob("*.json"))
        assert traces and traces[0].startswith("trace_00_")
        loaded = load_bundle(path)
        assert validate_bundle(loaded) == []
        for key in BUNDLE_REQUIRED_KEYS:
            assert key in loaded
        assert loaded["events_tail"] == [{"name": "epoch_bump"}]

    def test_validate_accepts_paths(self, tmp_path):
        path = write_bundle(minimal_bundle(), tmp_path / "diag.json")
        assert validate_bundle(path) == []
        assert validate_bundle(str(path)) == []

    def test_validate_flags_missing_sections(self):
        bundle = minimal_bundle()
        del bundle["telemetry_loss"]
        problems = validate_bundle(bundle)
        assert any("telemetry_loss" in p for p in problems)

    def test_validate_flags_bad_manifest(self):
        bundle = minimal_bundle()
        bundle["manifest"]["bundle_format"] = 99
        assert any(
            "bundle_format" in p for p in validate_bundle(bundle)
        )
        bundle["manifest"] = "nope"
        assert validate_bundle(bundle) == ["manifest is not a mapping"]

    def test_validate_flags_empty_exemplar(self):
        bundle = minimal_bundle()
        bundle["exemplar_traces"] = [{"reason": "error", "chrome_trace": {}}]
        assert any("traceEvents" in p for p in validate_bundle(bundle))

    def test_validate_flags_unreadable_path(self, tmp_path):
        bad = tmp_path / "nope.json"
        bad.write_text("{not json")
        assert any(
            "unreadable" in p for p in validate_bundle(bad)
        )

    def test_manifest_schema_constants(self):
        # The documented schema: the constants the docs and external
        # tooling rely on must not silently change.
        assert BUNDLE_FORMAT == 1
        assert set(MANIFEST_REQUIRED_KEYS) == {
            "bundle_format",
            "created_unix",
            "trigger",
            "contents",
        }
        assert set(KEEP_REASONS) == {"error", "event", "slow", "head"}
