"""Tests for dimension hierarchies and roll-ups."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bases import gaussian_pyramid
from repro.core.materialize import MaterializedSet
from repro.core.operators import OpCounter
from repro.cube import (
    BinaryHierarchy,
    DataCube,
    Dimension,
    HierarchicalDimension,
    rollup,
    rollup_element,
)


@pytest.fixture
def day_hierarchy() -> BinaryHierarchy:
    return BinaryHierarchy(("day", "pair", "half-week", "week"))


@pytest.fixture
def cube(rng, day_hierarchy) -> DataCube:
    dims = [
        HierarchicalDimension("day", list(range(8)), day_hierarchy),
        Dimension("store", ["A", "B"]),
    ]
    values = rng.integers(0, 10, size=(8, 2)).astype(float)
    return DataCube(values, dims, measure="sales")


class TestBinaryHierarchy:
    def test_levels(self, day_hierarchy):
        assert day_hierarchy.depth == 3
        assert day_hierarchy.level_of("day") == 0
        assert day_hierarchy.level_of("week") == 3
        assert day_hierarchy.block_size("half-week") == 4

    def test_unknown_level(self, day_hierarchy):
        with pytest.raises(KeyError, match="unknown level"):
            day_hierarchy.level_of("month")

    def test_duplicate_names(self):
        with pytest.raises(ValueError, match="duplicate"):
            BinaryHierarchy(("a", "a"))

    def test_empty(self):
        with pytest.raises(ValueError, match="at least the leaf level"):
            BinaryHierarchy(())


class TestHierarchicalDimension:
    def test_depth_bounded_by_extent(self, day_hierarchy):
        with pytest.raises(ValueError, match="exceeds log2"):
            HierarchicalDimension("d", [0, 1], day_hierarchy)

    def test_from_grouping_layout(self):
        dim = HierarchicalDimension.from_grouping(
            "store",
            {"north": ["n1", "n2", "n3"], "south": ["s1", "s2"]},
            leaf_level="store",
            group_level="region",
        )
        # Fan-out padded to 4; blocks are contiguous per region.
        assert dim.size == 8
        assert dim.encode("n1") == 0
        assert dim.encode("s1") == 4
        assert dim.hierarchy.level_of("region") == 2
        assert dim.group_names == ("north", "south")

    def test_from_grouping_rollup_sums_regions(self, rng):
        dim = HierarchicalDimension.from_grouping(
            "store", {"north": ["n1", "n2", "n3"], "south": ["s1", "s2"]}
        )
        values = np.zeros(8)
        data = {"n1": 3.0, "n2": 4.0, "n3": 5.0, "s1": 7.0, "s2": 1.0}
        for store, amount in data.items():
            values[dim.encode(store)] = amount
        cube = DataCube(values, [dim])
        rolled = rollup(cube, {"store": "group"})
        assert rolled[0] == pytest.approx(12.0)  # north
        assert rolled[1] == pytest.approx(8.0)  # south

    def test_from_grouping_empty(self):
        with pytest.raises(ValueError, match="at least one group"):
            HierarchicalDimension.from_grouping("x", {})


class TestRollup:
    def test_rollup_element_levels(self, cube):
        element = rollup_element(cube, {"day": "week"})
        assert element.nodes == ((3, 0), (0, 0))
        assert element.is_intermediate

    def test_integer_levels(self, cube):
        element = rollup_element(cube, {"day": 2, "store": 1})
        assert element.nodes == ((2, 0), (1, 0))

    def test_rollup_values_match_block_sums(self, cube):
        rolled = rollup(cube, {"day": "half-week"})
        expected = cube.values.reshape(2, 4, 2).sum(axis=1)
        np.testing.assert_array_equal(rolled, expected)

    def test_rollup_from_materialized_pyramid_is_free(self, cube):
        pyramid = MaterializedSet.from_cube(
            cube.values, gaussian_pyramid(cube.shape_id)
        )
        counter = OpCounter()
        rolled = rollup(
            cube, {"day": "week", "store": 1}, materialized=pyramid,
            counter=counter,
        )
        assert counter.total == 0  # stored intermediate: zero-op serve
        np.testing.assert_array_equal(
            rolled, cube.values.sum(axis=(0, 1), keepdims=True)
        )

    def test_unknown_dimension(self, cube):
        with pytest.raises(KeyError, match="unknown dimensions"):
            rollup_element(cube, {"bogus": 1})

    def test_level_out_of_range(self, cube):
        with pytest.raises(ValueError, match="outside"):
            rollup_element(cube, {"day": 4})

    def test_named_level_on_plain_dimension(self, cube):
        with pytest.raises(TypeError, match="no hierarchy"):
            rollup_element(cube, {"store": "region"})
