"""Tests for the ``python -m repro`` command-line entry point."""

from __future__ import annotations

import pytest

from repro.__main__ import main


class TestCLI:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "923,521" in out
        assert "MISMATCH" not in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "{V3,V6,V7}" in out
        assert "MISMATCH" not in out

    def test_figure8_with_trials(self, capsys):
        assert main(["figure8", "--trials", "3"]) == 0
        out = capsys.readouterr().out
        assert "mean V/D" in out

    def test_figure9_quick(self, capsys):
        assert main(["figure9", "--trials", "1", "--budgets", "3"]) == 0
        out = capsys.readouterr().out
        assert "point b" in out or "cube only" in out

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["bogus"])


class TestStatsCLI:
    def test_stats_text(self, capsys):
        assert main(["stats", "--queries", "4"]) == 0
        out = capsys.readouterr().out
        assert "view_cache_hits_total" in out
        assert "server.query" in out
        assert "cache hit rate" in out

    def test_stats_json_exposes_spans_and_cache_hits(self, capsys):
        import json

        assert main(["stats", "--json", "--queries", "4"]) == 0
        payload = json.loads(capsys.readouterr().out)
        metrics = payload["metrics"]
        # The repeated aggregated-view queries were answered from cache.
        assert sum(metrics["view_cache_hits_total"]["values"].values()) > 0
        # Reconfiguration bumped the epoch gauge.
        assert metrics["server_epoch"]["values"][""] == 1.0
        # Per-stage spans with op counts are present.
        names = {s["name"] for s in payload["spans"]}
        assert {"server.query", "materialize.assemble", "range.range_sum"} <= names
        query_spans = [
            s for s in payload["spans"] if s["name"] == "server.query"
        ]
        assert any(s["attributes"].get("cache") == "hit" for s in query_spans)
        assert all("duration_ms" in s for s in payload["spans"])
        assert payload["span_summary"]["server.query"]["count"] == len(
            query_spans
        )

    def test_stats_surfaces_update_patch_counters(self, capsys):
        import json

        assert main(["stats", "--json", "--queries", "4"]) == 0
        payload = json.loads(capsys.readouterr().out)
        health = payload["health"]
        assert health["updates"] == 4.0  # one point + three bulk cells
        assert health["updates_cache_patched"] > 0
        assert health["updates_cache_cleared"] == 0.0
        metrics = payload["metrics"]
        assert (
            sum(
                metrics["server_update_cache_patched_total"][
                    "values"
                ].values()
            )
            > 0
        )
        names = {s["name"] for s in payload["spans"]}
        assert {"server.update", "update.propagate"} <= names


class TestUpdateCLI:
    def test_update_gate_passes(self, capsys):
        assert main(["update", "--shards", "1,2", "--seed", "23"]) == 0
        out = capsys.readouterr().out
        assert "BIT-IDENTICAL" in out
        assert "coarse_cleared=0" in out
        assert out.rstrip().endswith("PASS")

    def test_update_gate_json_and_output(self, capsys, tmp_path):
        import json

        report_path = tmp_path / "report.json"
        assert (
            main(
                [
                    "update",
                    "--shards",
                    "1",
                    "--json",
                    "--output",
                    str(report_path),
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"]
        assert json.loads(report_path.read_text()) == payload

    def test_update_replays_a_trace_file(self, capsys, tmp_path):
        from repro.streaming import (
            UpdateStreamConfig,
            generate_trace,
            save_trace,
        )

        trace_path = tmp_path / "trace.json"
        save_trace(
            generate_trace(UpdateStreamConfig(operations=12)), trace_path
        )
        assert (
            main(["update", "--shards", "1", "--trace", str(trace_path)])
            == 0
        )
        out = capsys.readouterr().out
        assert "trace_ops=13" in out  # 12 steps + the mid-trace reconfigure
        assert "PASS" in out
