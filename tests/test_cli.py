"""Tests for the ``python -m repro`` command-line entry point."""

from __future__ import annotations

import pytest

from repro.__main__ import main


class TestCLI:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "923,521" in out
        assert "MISMATCH" not in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "{V3,V6,V7}" in out
        assert "MISMATCH" not in out

    def test_figure8_with_trials(self, capsys):
        assert main(["figure8", "--trials", "3"]) == 0
        out = capsys.readouterr().out
        assert "mean V/D" in out

    def test_figure9_quick(self, capsys):
        assert main(["figure9", "--trials", "1", "--budgets", "3"]) == 0
        out = capsys.readouterr().out
        assert "point b" in out or "cube only" in out

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["bogus"])
