"""Cross-cutting property-based tests of the core invariants.

Each class pins one algebraic law the paper relies on, checked over
randomized inputs with hypothesis.  These overlap deliberately with the
per-module unit tests: the unit tests check behaviours, these check the
*laws* that make the whole construction sound.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bases import random_wavelet_packet_basis
from repro.core.costs import support_cost
from repro.core.element import CubeShape, ElementId
from repro.core.engine import SelectionEngine
from repro.core.graph import ViewElementGraph
from repro.core.materialize import MaterializedSet, compute_element
from repro.core.operators import (
    analyze,
    partial_residual,
    partial_sum,
    partial_sum_k,
    synthesize,
)
from repro.core.population import QueryPopulation
from repro.core.select_basis import select_minimum_cost_basis
from repro.core.select_redundant import generation_cost, total_processing_cost

SHAPES = [CubeShape((4, 4)), CubeShape((8, 2)), CubeShape((2, 2, 4))]


def _random_element(shape: CubeShape, rng: np.random.Generator) -> ElementId:
    nodes = []
    for depth in shape.depths:
        k = int(rng.integers(0, depth + 1))
        j = int(rng.integers(0, 1 << k))
        nodes.append((k, j))
    return ElementId(shape, tuple(nodes))


class TestLinearityLaws:
    """View elements are linear functionals of the cube."""

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        scale=st.integers(min_value=-5, max_value=5),
    )
    def test_homogeneity_and_additivity(self, seed, scale):
        shape = CubeShape((4, 4))
        rng = np.random.default_rng(seed)
        a = rng.integers(-9, 9, size=shape.sizes).astype(float)
        b = rng.integers(-9, 9, size=shape.sizes).astype(float)
        element = _random_element(shape, rng)
        left = compute_element(scale * a + b, element)
        right = scale * compute_element(a, element) + compute_element(b, element)
        np.testing.assert_allclose(left, right)


class TestTransformInvertibility:
    """Any split sequence is invertible step by step."""

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_multi_step_round_trip(self, seed):
        rng = np.random.default_rng(seed)
        data = rng.integers(-99, 99, size=(8, 4)).astype(float)
        stack = []
        out = data
        for _ in range(4):
            axis = int(rng.integers(0, 2))
            if out.shape[axis] < 2:
                continue
            p, r = analyze(out, axis)
            stack.append((axis, r))
            out = p
        while stack:
            axis, r = stack.pop()
            out = synthesize(out, r, axis)
        np.testing.assert_allclose(out, data)


class TestContainmentOrder:
    """Frequency-plane containment is a partial order matching the graph."""

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_reflexive_antisymmetric_transitive(self, seed):
        rng = np.random.default_rng(seed)
        shape = SHAPES[seed % len(SHAPES)]
        a = _random_element(shape, rng)
        b = _random_element(shape, rng)
        c = _random_element(shape, rng)
        assert a.contains(a)
        if a.contains(b) and b.contains(a):
            assert a == b
        if a.contains(b) and b.contains(c):
            assert a.contains(c)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_children_partition_parent(self, seed):
        rng = np.random.default_rng(seed)
        shape = SHAPES[seed % len(SHAPES)]
        element = _random_element(shape, rng)
        for dim in element.splittable_dims():
            p, r = element.children(dim)
            assert element.contains(p) and element.contains(r)
            assert not p.intersects(r)
            assert p.volume + r.volume == element.volume
            assert (
                p.frequency_volume() + r.frequency_volume()
                == pytest.approx(element.frequency_volume())
            )


class TestCostModelLaws:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_support_cost_symmetry_and_zero_cases(self, seed):
        rng = np.random.default_rng(seed)
        shape = SHAPES[seed % len(SHAPES)]
        a = _random_element(shape, rng)
        b = _random_element(shape, rng)
        assert support_cost(a, b) == support_cost(b, a)
        assert support_cost(a, a) == 0
        if not a.intersects(b):
            assert support_cost(a, b) == 0

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_generation_cost_monotone_in_selection(self, seed):
        """Adding elements never makes any target more expensive."""
        rng = np.random.default_rng(seed)
        shape = CubeShape((4, 4))
        basis = random_wavelet_packet_basis(shape, rng)
        extra = _random_element(shape, rng)
        target = _random_element(shape, rng)
        before = generation_cost(target, basis)
        after = generation_cost(target, basis + [extra])
        assert after <= before + 1e-9

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_complete_set_generates_everything(self, seed):
        rng = np.random.default_rng(seed)
        shape = CubeShape((4, 4))
        basis = random_wavelet_packet_basis(shape, rng)
        target = _random_element(shape, rng)
        assert generation_cost(target, basis) < float("inf")


class TestSelectionLaws:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_algorithm1_beats_any_random_basis(self, seed):
        """Optimality against sampled wavelet-packet bases."""
        from repro.core.costs import basis_population_cost

        rng = np.random.default_rng(seed)
        shape = CubeShape((4, 4))
        population = QueryPopulation.random_over_views(shape, rng)
        optimal = select_minimum_cost_basis(shape, population)
        for _ in range(5):
            candidate = random_wavelet_packet_basis(shape, rng)
            assert optimal.cost <= basis_population_cost(
                candidate, population
            ) + 1e-9

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_procedure3_lower_bounds_additive_cost(self, seed):
        from repro.core.costs import basis_population_cost

        rng = np.random.default_rng(seed)
        shape = CubeShape((4, 4))
        population = QueryPopulation.random_over_views(shape, rng)
        basis = random_wavelet_packet_basis(shape, rng)
        assert total_processing_cost(basis, population) <= (
            basis_population_cost(basis, population) + 1e-9
        )


class TestAssemblyConsistency:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_assembled_equals_direct_computation(self, seed):
        rng = np.random.default_rng(seed)
        shape = CubeShape((4, 4))
        data = rng.integers(-9, 9, size=shape.sizes).astype(float)
        basis = random_wavelet_packet_basis(shape, rng)
        ms = MaterializedSet.from_cube(data, basis)
        target = _random_element(shape, rng)
        np.testing.assert_allclose(
            ms.assemble(target), compute_element(data, target)
        )

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_incremental_update_commutes_with_assembly(self, seed):
        rng = np.random.default_rng(seed)
        shape = CubeShape((4, 4))
        data = rng.integers(-9, 9, size=shape.sizes).astype(float)
        basis = random_wavelet_packet_basis(shape, rng)
        ms = MaterializedSet.from_cube(data, basis)
        coords = tuple(int(rng.integers(n)) for n in shape.sizes)
        delta = float(rng.integers(1, 9))
        ms.apply_update(coords, delta)
        updated = data.copy()
        updated[coords] += delta
        target = _random_element(shape, rng)
        np.testing.assert_allclose(
            ms.assemble(target), compute_element(updated, target)
        )


#: Random power-of-two shapes and dtypes for the operator-law tests.
_LAW_SHAPES = st.lists(
    st.sampled_from([2, 4, 8]), min_size=1, max_size=3
).map(tuple)
_LAW_DTYPES = st.sampled_from(
    [np.float64, np.float32, np.int64, np.int32]
)


def _law_array(shape, dtype, seed) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(-99, 99, size=shape).astype(dtype)


class TestOperatorLaws:
    """The paper's four operator properties on random shapes and dtypes.

    Integer-valued data keeps every law exact even after float conversion
    (sums/differences/halving of even sums are exact in binary floats), so
    these use exact comparisons, not tolerances.
    """

    @settings(max_examples=60, deadline=None)
    @given(
        shape=_LAW_SHAPES,
        dtype=_LAW_DTYPES,
        seed=st.integers(min_value=0, max_value=10_000),
        data=st.data(),
    )
    def test_perfect_reconstruction(self, shape, dtype, seed, data):
        """Property 1 (Eqs 3-4): synthesize(P1, R1) rebuilds the input."""
        a = _law_array(shape, dtype, seed)
        axis = data.draw(st.integers(min_value=0, max_value=len(shape) - 1))
        p, r = analyze(a, axis)
        np.testing.assert_array_equal(
            synthesize(p, r, axis), a.astype(np.float64)
        )

    @settings(max_examples=60, deadline=None)
    @given(
        shape=_LAW_SHAPES,
        dtype=_LAW_DTYPES,
        seed=st.integers(min_value=0, max_value=10_000),
        data=st.data(),
    )
    def test_non_expansiveness(self, shape, dtype, seed, data):
        """Property 3 (Eqs 11-13): the two outputs exactly tile the input."""
        a = _law_array(shape, dtype, seed)
        axis = data.draw(st.integers(min_value=0, max_value=len(shape) - 1))
        p, r = analyze(a, axis)
        assert p.size + r.size == a.size
        assert p.shape == r.shape
        expected = list(a.shape)
        expected[axis] //= 2
        assert p.shape == tuple(expected)

    @settings(max_examples=60, deadline=None)
    @given(
        shape=_LAW_SHAPES,
        dtype=_LAW_DTYPES,
        seed=st.integers(min_value=0, max_value=10_000),
        data=st.data(),
    )
    def test_distributivity_of_cascaded_p1(self, shape, dtype, seed, data):
        """Property 2 (Eqs 5-10): k cascaded P1 = direct 2**k block sums."""
        a = _law_array(shape, dtype, seed)
        axis = data.draw(st.integers(min_value=0, max_value=len(shape) - 1))
        max_k = int(shape[axis]).bit_length() - 1
        k = data.draw(st.integers(min_value=0, max_value=max_k))
        cascaded = partial_sum_k(a, axis, k)
        blocks = np.asarray(a, dtype=np.float64)
        new_shape = (
            blocks.shape[:axis]
            + (blocks.shape[axis] >> k, 1 << k)
            + blocks.shape[axis + 1 :]
        )
        direct = blocks.reshape(new_shape).sum(axis=axis + 1)
        np.testing.assert_array_equal(cascaded, direct)

    @settings(max_examples=60, deadline=None)
    @given(
        shape=_LAW_SHAPES,
        dtype=_LAW_DTYPES,
        seed=st.integers(min_value=0, max_value=10_000),
        data=st.data(),
    )
    def test_dimension_separability(self, shape, dtype, seed, data):
        """Property 4 (Eq 14): operators on distinct dimensions commute."""
        if len(shape) < 2:
            return
        a = _law_array(shape, dtype, seed)
        axes = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=len(shape) - 1),
                min_size=2,
                max_size=2,
                unique=True,
            )
        )
        ax1, ax2 = axes
        ops = [
            data.draw(st.sampled_from([partial_sum, partial_residual]))
            for _ in range(2)
        ]
        forward = ops[1](ops[0](a, ax1), ax2)
        backward = ops[0](ops[1](a, ax2), ax1)
        np.testing.assert_array_equal(forward, backward)


#: Engines are cached per shape: index-table construction dominates the
#: differential test otherwise.
_ENGINES: dict[CubeShape, SelectionEngine] = {}


def _engine_for(shape: CubeShape) -> SelectionEngine:
    engine = _ENGINES.get(shape)
    if engine is None:
        engine = _ENGINES[shape] = SelectionEngine(shape)
    return engine


class TestEngineDifferential:
    """Vectorized engine vs the reference recursion on random inputs."""

    # Degenerate single-dimension cubes included deliberately.
    DIFF_SHAPES = [
        CubeShape((8,)),
        CubeShape((2,)),
        CubeShape((4, 4)),
        CubeShape((8, 2)),
        CubeShape((2, 2, 4)),
    ]

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=100_000))
    def test_total_processing_cost_matches_reference(self, seed):
        rng = np.random.default_rng(seed)
        shape = self.DIFF_SHAPES[seed % len(self.DIFF_SHAPES)]
        engine = _engine_for(shape)
        population = QueryPopulation.random_over_views(shape, rng)
        # Random selection: the root (so every target is generable) plus a
        # few random extra elements.
        extras = [
            _random_element(shape, rng)
            for _ in range(int(rng.integers(0, 4)))
        ]
        selected = list({shape.root(), *extras})
        reference = total_processing_cost(selected, population)
        fast = engine.total_processing_cost(selected, population)
        assert fast == pytest.approx(reference, rel=1e-12, abs=1e-9)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=100_000))
    def test_rootless_selection_matches_reference(self, seed):
        """Random bases without the root, including incomplete ones."""
        rng = np.random.default_rng(seed)
        shape = self.DIFF_SHAPES[seed % len(self.DIFF_SHAPES)]
        engine = _engine_for(shape)
        population = QueryPopulation.random_over_views(shape, rng)
        basis = random_wavelet_packet_basis(shape, rng)
        keep = max(1, int(rng.integers(1, len(basis) + 1)))
        selected = list(basis[:keep])
        reference = total_processing_cost(selected, population)
        fast = engine.total_processing_cost(selected, population)
        if reference == float("inf"):
            assert fast == float("inf")
        else:
            assert fast == pytest.approx(reference, rel=1e-12, abs=1e-9)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=100_000))
    def test_node_generation_costs_match_reference(self, seed):
        rng = np.random.default_rng(seed)
        shape = self.DIFF_SHAPES[seed % len(self.DIFF_SHAPES)]
        engine = _engine_for(shape)
        selected = list(
            {shape.root(), *(_random_element(shape, rng) for _ in range(2))}
        )
        t_vals = engine.node_generation_costs(selected)
        memo: dict = {}
        for _ in range(5):
            target = _random_element(shape, rng)
            idx = engine.index_of(target)
            assert t_vals[idx] == pytest.approx(
                generation_cost(target, selected, _memo=memo), abs=1e-9
            )
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_volume_census(self, seed):
        """Per block, element volumes sum to Vol(A) (non-expansiveness)."""
        shape = SHAPES[seed % len(SHAPES)]
        graph = ViewElementGraph(shape)
        for levels in graph.blocks():
            block_volume = sum(
                e.volume for e in graph.elements_at_level(levels)
            )
            assert block_volume == shape.volume
