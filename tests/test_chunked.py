"""Tests for chunked MOLAP storage (Zhao et al. [13] substrate)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.element import CubeShape
from repro.core.materialize import compute_element
from repro.core.element import ElementId
from repro.cube import ChunkedCube


@pytest.fixture
def blocky(rng):
    """A cube with activity concentrated in a corner (many empty chunks)."""
    shape = CubeShape((8, 8))
    dense = np.zeros(shape.sizes)
    dense[:4, :4] = rng.integers(1, 9, size=(4, 4))
    return shape, dense


class TestConstruction:
    def test_empty_chunks_not_stored(self, blocky):
        shape, dense = blocky
        cube = ChunkedCube.from_dense(dense, (2, 2), shape)
        assert cube.num_chunks_total == 16
        assert cube.num_chunks_stored == 4
        assert cube.stored_cells == 16

    def test_round_trip(self, blocky, rng):
        shape, dense = blocky
        dense = dense + 0  # keep fixture intact
        cube = ChunkedCube.from_dense(dense, (4, 2), shape)
        np.testing.assert_array_equal(cube.densify(), dense)

    def test_chunk_lookup(self, blocky):
        shape, dense = blocky
        cube = ChunkedCube.from_dense(dense, (4, 4), shape)
        assert cube.chunk((0, 0)) is not None
        assert cube.chunk((1, 1)) is None

    @pytest.mark.parametrize(
        "extents,message",
        [
            ((3, 2), "power of two"),
            ((16, 2), "does not divide"),
            ((2,), "chunk extents"),
        ],
    )
    def test_validation(self, blocky, extents, message):
        shape, _ = blocky
        with pytest.raises(ValueError, match=message):
            ChunkedCube(shape, extents)

    def test_dense_shape_checked(self, blocky):
        shape, _ = blocky
        with pytest.raises(ValueError, match="!="):
            ChunkedCube.from_dense(np.zeros((2, 2)), (2, 2), shape)


class TestAggregation:
    def test_total(self, blocky):
        shape, dense = blocky
        cube = ChunkedCube.from_dense(dense, (2, 2), shape)
        assert cube.total() == pytest.approx(dense.sum())

    @pytest.mark.parametrize("axes", [(0,), (1,), (0, 1)])
    def test_total_aggregate_matches_dense(self, blocky, axes):
        shape, dense = blocky
        cube = ChunkedCube.from_dense(dense, (4, 2), shape)
        np.testing.assert_allclose(
            cube.total_aggregate(axes),
            dense.sum(axis=axes, keepdims=True),
        )

    def test_random_dense_cube(self, rng):
        shape = CubeShape((8, 4, 4))
        dense = rng.integers(0, 5, size=shape.sizes).astype(float)
        cube = ChunkedCube.from_dense(dense, (4, 2, 4), shape)
        np.testing.assert_allclose(
            cube.total_aggregate((0, 2)),
            dense.sum(axis=(0, 2), keepdims=True),
        )


class TestChunkPartialSums:
    def test_matches_intermediate_element(self, rng):
        shape = CubeShape((8, 8))
        dense = rng.integers(0, 9, size=shape.sizes).astype(float)
        cube = ChunkedCube.from_dense(dense, (4, 4), shape)
        levels = (2, 1)
        element = ElementId(shape, tuple((k, 0) for k in levels))
        np.testing.assert_array_equal(
            cube.chunk_partial_sums(levels),
            compute_element(dense, element),
        )

    def test_level_bounded_by_chunk(self, blocky):
        shape, dense = blocky
        cube = ChunkedCube.from_dense(dense, (2, 2), shape)
        with pytest.raises(ValueError, match="exceeds chunk extent"):
            cube.chunk_partial_sums((2, 0))

    def test_arity_checked(self, blocky):
        shape, dense = blocky
        cube = ChunkedCube.from_dense(dense, (2, 2), shape)
        with pytest.raises(ValueError, match="dimensionality"):
            cube.chunk_partial_sums((1,))

    def test_empty_chunks_produce_zero_cells(self, blocky):
        shape, dense = blocky
        cube = ChunkedCube.from_dense(dense, (4, 4), shape)
        partials = cube.chunk_partial_sums((2, 2))
        assert partials[1, 1] == 0.0
        assert partials[0, 0] == dense[:4, :4].sum()


class TestRangeSum:
    """Non-aligned boxes crossing chunk boundaries (the gap the earlier
    suite left open: every aggregate above is chunk- or axis-aligned)."""

    def test_box_crossing_every_chunk_boundary(self, blocky):
        shape, dense = blocky
        cube = ChunkedCube.from_dense(dense, (2, 2), shape)
        # (1, 7) x (1, 7) is not chunk-aligned on either side and crosses
        # three boundaries per axis of the 2x2 chunk grid.
        assert cube.range_sum(((1, 7), (1, 7))) == pytest.approx(
            dense[1:7, 1:7].sum()
        )

    def test_non_dyadic_odd_extents(self, rng):
        shape = CubeShape((8, 8))
        dense = rng.integers(0, 9, size=shape.sizes).astype(float)
        cube = ChunkedCube.from_dense(dense, (4, 4), shape)
        # Odd, non-dyadic extents: width 5 and 3, straddling the chunk
        # seam at index 4 on both axes.
        assert cube.range_sum(((3, 8), (2, 5))) == pytest.approx(
            dense[3:8, 2:5].sum()
        )

    def test_exhaustive_boxes_match_dense(self, rng):
        shape = CubeShape((8, 4))
        dense = rng.integers(0, 9, size=shape.sizes).astype(float)
        cube = ChunkedCube.from_dense(dense, (2, 4), shape)
        for lo0 in range(8):
            for hi0 in range(lo0 + 1, 9):
                for lo1 in range(4):
                    for hi1 in range(lo1 + 1, 5):
                        box = ((lo0, hi0), (lo1, hi1))
                        assert cube.range_sum(box) == pytest.approx(
                            dense[lo0:hi0, lo1:hi1].sum()
                        ), box

    def test_empty_chunks_are_skipped(self, blocky):
        shape, dense = blocky
        cube = ChunkedCube.from_dense(dense, (2, 2), shape)
        from repro.core import OpCounter

        counter = OpCounter()
        # The box covers only the empty quadrant: no chunk is touched.
        assert cube.range_sum(((4, 8), (4, 8)), counter=counter) == 0.0
        assert counter.total == 0

    def test_counter_counts_clipped_cells_only(self, blocky):
        shape, dense = blocky
        cube = ChunkedCube.from_dense(dense, (4, 4), shape)
        from repro.core import OpCounter

        counter = OpCounter()
        value = cube.range_sum(((1, 3), (0, 4)), counter=counter)
        assert value == pytest.approx(dense[1:3, 0:4].sum())
        # Only the intersection's cells are summed, not whole chunks.
        assert counter.total == 2 * 4

    def test_three_dimensional_crossing(self, rng):
        shape = CubeShape((4, 8, 4))
        dense = rng.integers(0, 5, size=shape.sizes).astype(float)
        cube = ChunkedCube.from_dense(dense, (2, 4, 4), shape)
        assert cube.range_sum(((1, 4), (3, 7), (1, 2))) == pytest.approx(
            dense[1:4, 3:7, 1:2].sum()
        )

    @pytest.mark.parametrize(
        "box,message",
        [
            ((((0, 4)),), "1 ranges"),
            (((0, 9), (0, 8)), "outside extent"),
            (((-1, 4), (0, 8)), "outside extent"),
        ],
    )
    def test_validation(self, blocky, box, message):
        shape, dense = blocky
        cube = ChunkedCube.from_dense(dense, (2, 2), shape)
        with pytest.raises(ValueError, match=message):
            cube.range_sum(box)
