"""Unit tests for the resilience primitives: errors, deadlines, faults."""

import time

import numpy as np
import pytest

from repro.core.element import CubeShape
from repro.core.materialize import MaterializedSet
from repro.errors import (
    AdmissionRejected,
    IncompleteSetError,
    IntegrityError,
    QueryTimeout,
    ReproError,
    TransientFault,
)
from repro.resilience import (
    Deadline,
    FaultInjector,
    FaultRule,
    check_deadline,
    current_deadline,
    current_injector,
    deadline_scope,
    fault_point,
)


class TestErrorTaxonomy:
    def test_all_errors_share_the_base_class(self):
        for exc_type in (
            QueryTimeout,
            AdmissionRejected,
            IntegrityError,
            TransientFault,
            IncompleteSetError,
        ):
            assert issubclass(exc_type, ReproError)

    def test_incomplete_set_is_a_value_error(self):
        # Historical callers catch ValueError for "cannot assemble".
        assert issubclass(IncompleteSetError, ValueError)

    def test_query_timeout_carries_timing(self):
        exc = QueryTimeout("late", elapsed_ms=12.5, budget_ms=10.0)
        assert exc.elapsed_ms == 12.5
        assert exc.budget_ms == 10.0

    def test_transient_fault_carries_site(self):
        assert TransientFault("boom", site="exec.compute_node").site == (
            "exec.compute_node"
        )


class TestDeadline:
    def test_fresh_deadline_is_not_expired(self):
        deadline = Deadline.after(60.0)
        assert not deadline.expired
        assert deadline.remaining() > 0
        deadline.check("test")  # must not raise

    def test_expired_deadline_raises_with_timing(self):
        deadline = Deadline.after(-0.001)
        assert deadline.expired
        with pytest.raises(QueryTimeout) as excinfo:
            deadline.check("test.site")
        assert excinfo.value.budget_ms is not None

    def test_check_deadline_is_a_noop_without_a_scope(self):
        assert current_deadline() is None
        check_deadline("anywhere")  # must not raise

    def test_deadline_scope_activates_and_restores(self):
        deadline = Deadline.after(60.0)
        with deadline_scope(deadline):
            assert current_deadline() is deadline
        assert current_deadline() is None

    def test_none_scope_passes_through(self):
        with deadline_scope(None):
            assert current_deadline() is None

    def test_nested_scopes_keep_the_earliest_expiry(self):
        outer = Deadline.after(0.050)
        inner = Deadline.after(999.0)
        with deadline_scope(outer):
            with deadline_scope(inner):
                active = current_deadline()
                assert active is not None
                assert active.remaining() <= 0.050
            assert current_deadline() is outer

    def test_check_deadline_raises_inside_expired_scope(self):
        with deadline_scope(Deadline.after(-0.001)):
            with pytest.raises(QueryTimeout):
                check_deadline("test")


class TestFaultRule:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            FaultRule(site="x", kind="explode")

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            FaultRule(site="x", kind="error", probability=1.5)

    def test_to_dict_describes_the_rule(self):
        rule = FaultRule(site="x", kind="latency", latency_ms=3.0, max_fires=2)
        d = rule.to_dict()
        assert d["site"] == "x"
        assert d["latency_ms"] == 3.0
        assert d["max_fires"] == 2


class TestFaultInjector:
    def test_inactive_sites_are_noops(self):
        assert current_injector() is None
        fault_point("exec.compute_node")  # must not raise

    def test_error_rule_raises_transient_fault_with_site(self):
        injector = FaultInjector(
            [FaultRule(site="s", kind="error", probability=1.0)], seed=3
        )
        with injector.activate():
            with pytest.raises(TransientFault) as excinfo:
                fault_point("s")
        assert excinfo.value.site == "s"
        assert injector.fired[0].kind == "error"

    def test_rules_only_match_their_site(self):
        injector = FaultInjector(
            [FaultRule(site="s", kind="error", probability=1.0)], seed=3
        )
        with injector.activate():
            fault_point("other")  # must not raise
        assert injector.fired == []

    def test_wildcard_site_matches_everything(self):
        injector = FaultInjector(
            [FaultRule(site="*", kind="error", probability=1.0)], seed=3
        )
        with injector.activate():
            with pytest.raises(TransientFault):
                fault_point("anything")

    def test_max_fires_bounds_the_rule(self):
        injector = FaultInjector(
            [FaultRule(site="s", kind="error", probability=1.0, max_fires=2)],
            seed=3,
        )
        with injector.activate():
            for _ in range(2):
                with pytest.raises(TransientFault):
                    fault_point("s")
            fault_point("s")  # exhausted: must not raise
        assert len(injector.fired) == 2

    def test_start_after_skips_early_invocations(self):
        injector = FaultInjector(
            [FaultRule(site="s", kind="error", probability=1.0, start_after=2)],
            seed=3,
        )
        with injector.activate():
            fault_point("s")
            fault_point("s")
            with pytest.raises(TransientFault):
                fault_point("s")

    def test_schedule_is_deterministic_in_the_seed(self):
        def fires(seed):
            injector = FaultInjector(
                [FaultRule(site="s", kind="error", probability=0.3)], seed=seed
            )
            out = []
            with injector.activate():
                for i in range(50):
                    try:
                        fault_point("s")
                        out.append(False)
                    except TransientFault:
                        out.append(True)
            return out

        assert fires(7) == fires(7)
        assert fires(7) != fires(8)  # a different seed perturbs the plan
        assert any(fires(7))
        assert not all(fires(7))

    def test_latency_rule_sleeps(self):
        injector = FaultInjector(
            [FaultRule(site="s", kind="latency", latency_ms=30.0)], seed=3
        )
        start = time.perf_counter()
        with injector.activate():
            fault_point("s")
        assert time.perf_counter() - start >= 0.025
        assert injector.fired[0].kind == "latency"

    def test_corrupt_rule_damages_one_deterministic_cell(self):
        def corrupted():
            injector = FaultInjector(
                [FaultRule(site="s", kind="corrupt", magnitude=100.0)], seed=3
            )
            array = np.zeros((4, 4))
            with injector.activate():
                injector.corrupt("s", array)
            return array

        first, second = corrupted(), corrupted()
        assert np.count_nonzero(first) == 1
        assert np.array_equal(first, second)

    def test_summary_reports_fires_by_site(self):
        injector = FaultInjector(
            [FaultRule(site="s", kind="error", probability=1.0)], seed=3
        )
        with injector.activate():
            with pytest.raises(TransientFault):
                fault_point("s")
        summary = injector.summary()
        assert summary["fired_total"] == 1
        assert summary["fired_by_site"] == {"s": {"error": 1}}
        assert summary["invocations"]["s"] == 1


class TestStoredIntegrity:
    def _set(self, rng):
        shape = CubeShape((4, 4))
        values = rng.integers(0, 50, size=(4, 4)).astype(float)
        return (
            MaterializedSet.from_cube(values, list(shape.aggregated_views())),
            values,
            shape,
        )

    def test_verify_passes_for_intact_elements(self, rng):
        ms, _, _ = self._set(rng)
        for element in ms.elements:
            assert ms.verify(element)

    def test_corruption_is_quarantined_on_first_use(self, rng):
        ms, _, shape = self._set(rng)
        victim = ms.elements[0]
        ms._arrays[victim].reshape(-1)[0] += 1e6  # post-seal bit-rot
        with pytest.raises(KeyError):
            ms.array(victim)
        assert victim in ms.quarantined
        assert victim not in ms

    def test_assembly_routes_around_a_quarantined_element(self, rng):
        ms, values, shape = self._set(rng)
        target = shape.aggregated_view((0,))
        expected = ms.assemble(target).copy()
        ms.quarantine(target, reason="test")
        rerouted = ms.assemble(target)
        assert np.array_equal(rerouted, expected)

    def test_verification_happens_before_assembly(self, rng):
        ms, _, shape = self._set(rng)
        victim = shape.aggregated_view((0,))
        ms._arrays[victim].reshape(-1)[0] += 1e6
        target = shape.aggregated_view((0, 1))
        ms.assemble(target)  # must not consume the damaged array
        assert victim in ms.quarantined

    def test_update_reseal_keeps_verification_honest(self, rng):
        ms, _, _ = self._set(rng)
        ms.apply_update((0, 0), 5.0)
        for element in ms.elements:
            assert ms.verify(element)

    def test_integrity_report_shape(self, rng):
        ms, _, _ = self._set(rng)
        report = ms.integrity_report()
        assert report["stored"] == len(ms.elements)
        assert report["quarantined"] == {}
