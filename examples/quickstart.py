"""Quickstart: decompose a data cube into view elements and assemble views.

Walks the core loop of the paper in five steps:

1. build a data cube from relational records;
2. look at its view element graph;
3. select the minimum-cost non-redundant basis for a workload (Algorithm 1);
4. materialize the basis and assemble aggregated views from it;
5. verify perfect reconstruction and compare processing costs.

Run::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    MaterializedSet,
    OpCounter,
    QueryPopulation,
    ViewElementGraph,
    select_minimum_cost_basis,
)
from repro.core.costs import element_population_cost
from repro.cube import build_cube
from repro.reporting import ascii_table


def main() -> None:
    # 1. A tiny fact table: sales by product and quarter.
    records = [
        {"product": "pen", "quarter": "Q1", "sales": 12.0},
        {"product": "pen", "quarter": "Q2", "sales": 15.0},
        {"product": "pen", "quarter": "Q3", "sales": 11.0},
        {"product": "pen", "quarter": "Q4", "sales": 22.0},
        {"product": "ink", "quarter": "Q1", "sales": 5.0},
        {"product": "ink", "quarter": "Q3", "sales": 8.0},
        {"product": "pad", "quarter": "Q2", "sales": 3.0},
        {"product": "pad", "quarter": "Q4", "sales": 6.0},
    ]
    cube = build_cube(records, ["product", "quarter"], "sales")
    shape = cube.shape_id
    print(f"built {cube}")
    print(f"cube shape {shape.sizes}, volume {shape.volume}\n")

    # 2. The view element graph behind this cube.
    graph = ViewElementGraph(shape)
    print(
        f"view element graph: {graph.num_elements} elements "
        f"({graph.num_aggregated_views} aggregated views, "
        f"{graph.num_intermediate} intermediate, "
        f"{graph.num_residual} residual)\n"
    )

    # 3. A workload: mostly by-product and grand-total queries.
    by_product = shape.aggregated_view([1])  # aggregate quarters away
    grand_total = shape.total_aggregation()
    population = QueryPopulation.from_pairs(
        [(by_product, 0.6), (grand_total, 0.4)]
    )
    selection = select_minimum_cost_basis(shape, population)
    print("Algorithm 1 selected the basis:")
    for element in selection.elements:
        print(f"  {element.describe():<8} volume {element.volume}")
    cube_only_cost = element_population_cost(shape.root(), population)
    print(
        ascii_table(
            ["strategy", "expected ops per query"],
            [
                ["store cube only", cube_only_cost],
                ["Algorithm 1 basis", selection.cost],
            ],
        )
    )
    print()

    # 4. Materialize and serve.
    materialized = MaterializedSet.from_cube(cube.values, selection.elements)
    counter = OpCounter()
    by_product_values = materialized.assemble(by_product, counter=counter)
    print(
        f"assembled the by-product view with {counter.total} scalar ops:"
    )
    for i, name in enumerate(cube.dimensions["product"].values):
        print(f"  {name}: {by_product_values[i, 0]:.0f}")
    print()

    # 5. Perfect reconstruction: the basis loses nothing.
    reconstructed = materialized.reconstruct_cube()
    assert np.allclose(reconstructed, cube.values)
    print(
        "perfect reconstruction verified: the basis represents the cube "
        f"exactly in {materialized.storage} cells "
        f"(the cube itself has {shape.volume})."
    )


if __name__ == "__main__":
    main()
