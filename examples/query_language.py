"""Interactive-style session through the textual query language.

Exercises the tiny SQL-ish front door — aggregated views for pure
``BY`` queries and range-aggregations for ``WHERE`` predicates — against
the sales cube, cross-checking every answer against the relational layer.

Run::

    python examples/query_language.py
"""

from __future__ import annotations

from repro.query import execute
from repro.relational import group_by_sum_dict
from repro.reporting import ascii_table
from repro.server import OLAPServer
from repro.workloads import SalesConfig, generate_sales_records, sales_table


def main() -> None:
    config = SalesConfig(num_transactions=1500, num_days=16, seed=51)
    records = generate_sales_records(config)
    server = OLAPServer.from_records(
        records,
        ["product", "store", "day"],
        "sales",
        domains={"day": list(range(config.num_days))},
    )
    table = sales_table(config)

    queries = [
        "SUM",
        "SUM BY store",
        "SUM BY product, store",
        "SUM WHERE day IN [0, 8)",
        "SUM BY store WHERE day IN [4, 12)",
    ]
    product = server.cube.dimensions["product"].values[0]
    queries.append(f"SUM BY day WHERE product = '{product}'")

    for text in queries:
        result = execute(server, text)
        shown = sorted(result.items(), key=lambda kv: repr(kv[0]))[:6]
        rows = [[", ".join(map(str, key)) or "(total)", value] for key, value in shown]
        print(ascii_table(["group", "SUM(sales)"], rows, title=f"> {text}"))
        if len(result) > len(shown):
            print(f"  ... {len(result) - len(shown)} more groups")
        print()

    # Cross-check one grouped query against a relational GROUP BY.
    result = execute(server, "SUM BY store")
    expected = group_by_sum_dict(table, ["store"], "sales")
    assert all(
        abs(result[(store,)] - total) < 1e-6
        for (store,), total in expected.items()
    )
    print(
        f"verified against GROUP BY on the {table.num_rows}-row fact table; "
        f"server stats: {server.stats.queries} queries, "
        f"{server.stats.operations:,} scalar ops."
    )


if __name__ == "__main__":
    main()
