"""Wavelet-packet compression of sparse cubes + HRU baseline comparison.

Two shorter studies rounding out the reproduction:

1. **Compression** (paper §4.3, deferred there): a sparse sales cube —
   most product/customer combinations never trade — is stored as
   thresholded wavelet-packet coefficients in the basis that best isolates
   its non-zero regions.
2. **Baselines**: the classic HRU greedy view selection [8] under its own
   linear cost model, side by side with Algorithm 1 under the paper's
   addition-count model, on the same workload.

Run::

    python examples/compression_and_baselines.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    CompressedCube,
    QueryPopulation,
    select_minimum_cost_basis,
)
from repro.baselines import ViewLattice, hru_greedy
from repro.core.costs import element_population_cost
from repro.cube import SparseCube, view_element_of
from repro.reporting import ascii_table
from repro.workloads import SalesConfig, sales_cube


def compression_study() -> None:
    """Compress a piecewise-constant price cube losslessly.

    Haar residuals vanish exactly where neighbouring cells are equal, so
    the best wavelet-packet basis shines on piecewise-constant structure —
    here a product x day list-price table where prices change on a handful
    of dates (the usual shape of reference/price data), with a sparse
    promotional-discount overlay.
    """
    from repro.core.element import CubeShape

    rng = np.random.default_rng(23)
    num_products, num_days = 32, 64
    shape = CubeShape((num_products, num_days))
    prices = np.zeros(shape.sizes)
    for p in range(num_products):
        # 1-3 price changes over the period, at random dates.
        change_days = np.sort(
            rng.choice(num_days, size=int(rng.integers(1, 4)), replace=False)
        )
        level = float(rng.integers(10, 100))
        start = 0
        for day in list(change_days) + [num_days]:
            prices[p, start:day] = level
            level = float(rng.integers(10, 100))
            start = day
    # Sparse promotional discounts on individual (product, day) cells.
    for _ in range(20):
        prices[rng.integers(num_products), rng.integers(num_days)] -= 5.0

    sparse = SparseCube.from_dense(prices, shape)
    compressed = CompressedCube.compress(prices, shape, threshold=0.0)
    assert np.allclose(compressed.reconstruct(), prices)
    print(
        ascii_table(
            ["representation", "cell-equivalents", "ratio vs dense"],
            [
                ["dense cube", shape.volume, 1.0],
                [
                    "COO sparse",
                    sparse.memory_cells(),
                    shape.volume / sparse.memory_cells(),
                ],
                [
                    "wavelet-packet best basis (lossless)",
                    compressed.memory_cells(),
                    shape.volume / compressed.memory_cells(),
                ],
            ],
            title=(
                f"Compressing a {shape.sizes} piecewise-constant price "
                "cube (paper §4.3's deferred idea)"
            ),
        )
    )
    print(
        f"best basis uses {len(compressed.basis)} bands, "
        f"{compressed.stored_coefficients} surviving coefficients; "
        "reconstruction is exact.  (On scattered-sparse measures the "
        "best basis degenerates to the identity, matching COO — Haar "
        "compression needs block or piecewise-constant structure.)\n"
    )


def baseline_study() -> None:
    cube = sales_cube(SalesConfig(num_transactions=2000, seed=29))
    shape = cube.shape_id
    names = cube.dimensions.names

    workload = [
        (("product",), 0.4),
        (("store", "day"), 0.3),
        (("customer",), 0.2),
        ((), 0.1),
    ]
    population = QueryPopulation.from_pairs(
        [(view_element_of(cube, retained), f) for retained, f in workload]
    )

    # HRU under its own linear cost model.
    lattice = ViewLattice({d.name: d.size for d in cube.dimensions})
    frequencies = {
        frozenset(retained): f for retained, f in workload
    }
    hru = hru_greedy(lattice, k=3, frequencies=frequencies)
    hru_cost = sum(
        f * lattice.query_cost(list(hru.selected), frozenset(retained))
        for retained, f in workload
    )

    # Algorithm 1 under the paper's addition-count model.
    selection = select_minimum_cost_basis(shape, population)
    cube_only = element_population_cost(shape.root(), population)

    print(
        ascii_table(
            ["method", "cost model", "expected cost", "storage (cells)"],
            [
                [
                    "HRU greedy (top + 3 views)",
                    "rows scanned",
                    hru_cost,
                    hru.total_space,
                ],
                [
                    "cube only",
                    "adds/subs",
                    cube_only,
                    shape.volume,
                ],
                [
                    "Algorithm 1 basis",
                    "adds/subs",
                    selection.cost,
                    selection.storage,
                ],
            ],
            title="Baseline comparison on one dashboard workload",
        )
    )
    print(
        "\nHRU must spend storage beyond the cube "
        f"({hru.total_space} vs {shape.volume} cells) because views are "
        "one-way dependent; the Algorithm 1 basis re-uses its elements in "
        "both directions and never exceeds the cube volume."
    )


def main() -> None:
    compression_study()
    baseline_study()


if __name__ == "__main__":
    main()
