"""Dynamic assembly under a drifting workload (the paper's title in action).

The paper notes that access frequencies "can be observed on-line, allowing
the system to dynamically recon[f]igure".  This example runs a three-phase
workload against a sales cube — each phase hammers different views — and
compares:

- a static server that keeps only the raw cube;
- a static server configured optimally for phase 1 only;
- the :class:`DynamicViewAssembler`, which tracks accesses with exponential
  decay and re-runs Algorithm 1 periodically.

Run::

    python examples/adaptive_reconfiguration.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    DynamicViewAssembler,
    MaterializedSet,
    OpCounter,
    QueryPopulation,
    select_minimum_cost_basis,
)
from repro.workloads import SalesConfig, sales_cube
from repro.reporting import ascii_table


PHASES = [
    # (hot retained-dimension tuples, queries in the phase)
    ([("product",), ()], 120),
    ([("day",), ("store", "day")], 120),
    ([("customer",), ("product", "customer")], 120),
]


def main() -> None:
    cube = sales_cube(SalesConfig(num_transactions=3000, seed=13))
    shape = cube.shape_id
    names = cube.dimensions.names

    def element_for(retained):
        aggregated = [
            cube.dimensions.axis_of(n) for n in names if n not in retained
        ]
        return shape.aggregated_view(aggregated)

    # Build the full query sequence.
    rng = np.random.default_rng(3)
    sequence = []
    for hot_views, count in PHASES:
        elements = [element_for(r) for r in hot_views]
        for _ in range(count):
            sequence.append(elements[int(rng.integers(len(elements)))])

    # --- static: cube only ---------------------------------------------
    static_cube = MaterializedSet(shape)
    static_cube.store(shape.root(), cube.values)
    cube_ops = OpCounter()
    for view in sequence:
        static_cube.assemble(view, counter=cube_ops)

    # --- static: tuned for phase 1 --------------------------------------
    phase1 = QueryPopulation.point_mass(
        [element_for(r) for r in PHASES[0][0]]
    )
    phase1_basis = select_minimum_cost_basis(shape, phase1)
    static_tuned = MaterializedSet.from_cube(
        cube.values, phase1_basis.elements
    )
    tuned_ops = OpCounter()
    for view in sequence:
        static_tuned.assemble(view, counter=tuned_ops)

    # --- adaptive --------------------------------------------------------
    assembler = DynamicViewAssembler(
        cube.values, shape, reconfigure_every=40, decay=0.9
    )
    for view in sequence:
        assembler.query(view)

    n = len(sequence)
    print(
        ascii_table(
            ["server", "scalar ops", "per query"],
            [
                ["static: cube only", cube_ops.total, cube_ops.total / n],
                [
                    "static: tuned for phase 1",
                    tuned_ops.total,
                    tuned_ops.total / n,
                ],
                [
                    "dynamic view assembler",
                    assembler.stats.operations,
                    assembler.average_operations_per_query,
                ],
            ],
            title=f"Three-phase drifting workload ({n} queries)",
        )
    )

    print("\nreconfiguration history:")
    rows = []
    for record in assembler.history:
        rows.append(
            [
                record.at_access,
                len(record.elements),
                record.storage,
                record.expected_cost,
                record.migration_operations,
            ]
        )
    print(
        ascii_table(
            ["at access", "elements", "storage", "expected cost", "migration ops"],
            rows,
        )
    )
    print(
        "\nthe dynamic assembler follows the drift: after each phase shift "
        "it re-selects, and its per-query work stays near the per-phase "
        "optimum instead of degrading like the statically tuned server."
    )


if __name__ == "__main__":
    main()
