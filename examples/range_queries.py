"""Range-aggregation queries via intermediate view elements (paper §6).

The paper's motivating query: "the total sales of a particular product to a
particular customer between a range of dates".  This example materializes
the Gaussian pyramid of intermediate elements over a sales cube and answers
random date-range queries two ways — dyadic lookups against the pyramid
versus direct scans of the raw cube — verifying equality and comparing the
scalar work.

Run::

    python examples/range_queries.py
"""

from __future__ import annotations

import numpy as np

from repro import OpCounter, RangeQueryEngine
from repro.core.range_query import range_sum_direct
from repro.reporting import ascii_table
from repro.workloads import SalesConfig, sales_cube


def main() -> None:
    config = SalesConfig(
        num_products=8,
        num_customers=8,
        num_days=64,
        num_transactions=8000,
        seed=5,
    )
    cube = sales_cube(config)
    shape = cube.shape_id
    engine = RangeQueryEngine.with_gaussian_pyramid(cube.values, shape)
    print(f"cube {shape.sizes}; pyramid storage {engine.materialized.storage} "
          f"cells vs cube volume {shape.volume}\n")

    product_dim = cube.dimensions["product"]
    customer_dim = cube.dimensions["customer"]
    day_axis = cube.dimensions.axis_of("day")

    rng = np.random.default_rng(17)
    rows = []
    total_element_ops = 0
    direct_counter = OpCounter()
    for _ in range(10):
        product = product_dim.values[int(rng.integers(product_dim.cardinality))]
        customer = customer_dim.values[
            int(rng.integers(customer_dim.cardinality))
        ]
        day_lo = int(rng.integers(0, config.num_days - 1))
        day_hi = int(rng.integers(day_lo + 1, config.num_days + 1))

        ranges = [(0, n) for n in shape.sizes]
        p = product_dim.encode(product)
        c = customer_dim.encode(customer)
        ranges[cube.dimensions.axis_of("product")] = (p, p + 1)
        ranges[cube.dimensions.axis_of("customer")] = (c, c + 1)
        ranges[day_axis] = (day_lo, day_hi)

        answer = engine.range_sum(ranges)
        direct = range_sum_direct(cube.values, tuple(ranges), direct_counter)
        assert abs(answer.value - direct) < 1e-6
        total_element_ops += answer.operations
        rows.append(
            [
                f"{product} -> {customer}",
                f"[{day_lo}, {day_hi})",
                answer.value,
                answer.cells_read,
                answer.operations,
            ]
        )

    print(
        ascii_table(
            ["sales of/to", "day range", "total", "cells read", "ops"],
            rows,
            title="Product-to-customer date-range totals (paper §6 query)",
            precision=2,
        )
    )
    print(
        f"\nelement path: {total_element_ops:,} scalar ops for 10 queries; "
        f"direct cube scans needed {direct_counter.total:,} "
        f"({direct_counter.total / max(total_element_ops, 1):.0f}x more)."
    )
    print(
        "aligned power-of-two ranges collapse to single stored cells "
        "(Eq 40); arbitrary ranges decompose into at most "
        "2*log2(n) dyadic blocks per dimension."
    )


if __name__ == "__main__":
    main()
