"""A realistic OLAP session on a synthetic star-schema sales cube.

The scenario from the paper's introduction: an analyst works against a
4-dimensional sales cube (product x store x customer x day).  We compare
three ways to serve their dashboard workload —

- ROLAP: GROUP BY on the fact table for every query;
- MOLAP with the cube only: aggregate the stored cube per query;
- the paper's method: Algorithm 1 selects a view element basis for the
  observed query mix, Algorithm 2 adds redundant elements under a storage
  budget, and views are assembled from the selection —

and report measured scalar operations for each.

Run::

    python examples/sales_olap.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    MaterializedSet,
    OpCounter,
    QueryPopulation,
    SelectionEngine,
    select_minimum_cost_basis,
)
from repro.cube import view_element_of
from repro.relational import group_by_sum_dict
from repro.reporting import ascii_table
from repro.workloads import SalesConfig, sales_cube, sales_table


#: The analyst's dashboard: (retained dimensions, relative frequency).
WORKLOAD = [
    (("product",), 0.35),
    (("store",), 0.25),
    (("product", "store"), 0.20),
    (("day",), 0.15),
    ((), 0.05),  # grand total
]


def main() -> None:
    config = SalesConfig(num_transactions=5000, seed=42)
    table = sales_table(config)
    cube = sales_cube(config)
    shape = cube.shape_id
    print(f"fact table: {table.num_rows} rows -> {cube}")
    print(f"cube volume {shape.volume}, density {cube.density:.2%}\n")

    population = QueryPopulation.from_pairs(
        [(view_element_of(cube, retained), f) for retained, f in WORKLOAD]
    )

    # --- strategy 1: the paper's method -------------------------------
    selection = select_minimum_cost_basis(shape, population)
    engine = SelectionEngine(shape)
    budget = int(1.5 * shape.volume)
    # Candidate pool for redundant additions: the aggregated views plus the
    # intermediate elements (the elements range queries also benefit from).
    # The full 48,825-element graph is a valid pool too, just slower.
    from repro.core.graph import ViewElementGraph

    pool = list(shape.aggregated_views()) + list(
        ViewElementGraph(shape).intermediate_elements()
    )
    redundant = engine.greedy_redundant_selection(
        list(selection.elements),
        population,
        storage_budget=budget,
        candidates=pool,
        max_stages=8,
    )
    materialized = MaterializedSet.from_cube(cube.values, redundant.selected)
    print(
        f"Algorithm 1 basis: {len(selection.elements)} elements; "
        f"Algorithm 2 added {len(redundant.selected) - len(selection.elements)} "
        f"redundant elements within a {budget}-cell budget "
        f"({materialized.storage} cells used).\n"
    )

    # --- serve the workload under all three strategies ----------------
    rng = np.random.default_rng(7)
    retained_options = [retained for retained, _ in WORKLOAD]
    weights = np.array([f for _, f in WORKLOAD])
    query_sequence = rng.choice(
        len(retained_options), size=200, p=weights / weights.sum()
    )

    element_ops = OpCounter()
    cube_ops = OpCounter()
    rolap_rows_scanned = 0
    for choice in query_sequence:
        retained = retained_options[choice]
        element = view_element_of(cube, retained)

        assembled = materialized.assemble(element, counter=element_ops)
        direct = cube.view(
            [n for n in cube.dimensions.names if n not in retained],
            counter=cube_ops,
        )
        np.testing.assert_allclose(assembled, direct, atol=1e-6)

        rolap = group_by_sum_dict(table, list(retained), "sales")
        rolap_rows_scanned += table.num_rows
        # Spot-check one group against the assembled view.
        if rolap:
            key = next(iter(rolap))
            index = [0] * shape.ndim
            for name, value in zip(retained, key):
                axis = cube.dimensions.axis_of(name)
                index[axis] = cube.dimensions[name].encode(value)
            assert abs(assembled[tuple(index)] - rolap[key]) < 1e-6

    print(
        ascii_table(
            ["strategy", "scalar ops (200 queries)", "per query"],
            [
                [
                    "ROLAP GROUP BY (rows scanned)",
                    rolap_rows_scanned,
                    rolap_rows_scanned / 200,
                ],
                ["MOLAP, cube only", cube_ops.total, cube_ops.total / 200],
                [
                    "view elements (Alg 1 + Alg 2)",
                    element_ops.total,
                    element_ops.total / 200,
                ],
            ],
            title="Measured work to serve the dashboard workload",
        )
    )
    if element_ops.total:
        print(
            f"\nview elements did {cube_ops.total / element_ops.total:.1f}x "
            "less scalar work than re-aggregating the stored cube, with "
            "every answer verified against GROUP BY on the fact table."
        )
    else:
        print(
            "\nthe selected elements serve every dashboard query as a "
            "stored read (0 scalar ops); all answers verified against "
            "GROUP BY on the fact table."
        )

    # --- an ad-hoc drill-down outside the dashboard workload ----------
    adhoc = view_element_of(cube, ("product", "day"))
    adhoc_ops = OpCounter()
    assembled = materialized.assemble(adhoc, counter=adhoc_ops)
    direct_ops = OpCounter()
    direct = cube.view(["store", "customer"], counter=direct_ops)
    np.testing.assert_allclose(assembled, direct, atol=1e-6)
    print(
        f"\nad-hoc (product, day) drill-down not in the workload: "
        f"assembled in {adhoc_ops.total:,} ops vs {direct_ops.total:,} "
        "from the raw cube — unplanned queries still benefit from the "
        "element set."
    )


if __name__ == "__main__":
    main()
